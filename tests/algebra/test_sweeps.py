"""Plan-directed sweeps: byte-identity, staged evaluation, governance,
and the service/CLI integration of the algebra kind."""

import pytest

from repro.algebra.evaluate import (
    ExpressionPairTest,
    expression_membership,
    materialize,
    staged_mapping,
)
from repro.algebra.expr import Compose, MappingAtom, parse_expression
from repro.algebra.scenarios import (
    dead_branch_expression,
    fan_in_chain_expression,
    inverse_pairs,
)
from repro.algebra.sweeps import check_expression
from repro.catalog.mappings import projection, projection_quasi_inverse
from repro.core.mapping import StagedMapping, is_solution, universal_solution
from repro.datamodel.instances import Instance
from repro.engine import reset_all_caches
from repro.engine.cache import mapping_key
from repro.errors import CompositionBudgetError

WIDTH = 3


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_all_caches()
    yield
    reset_all_caches()


class TestStagedMapping:
    def test_staged_equals_materialized_chase(self):
        expr, = [fan_in_chain_expression(WIDTH)]
        staged = staged_mapping(expr)
        concrete = materialize(expr)
        assert isinstance(staged, StagedMapping)
        source = Instance.build({"P1": [("a", "b")], "Q2": [("b", "a")]})
        assert (
            universal_solution(staged, source).facts
            == universal_solution(concrete, source).facts
        )

    def test_staged_mapping_key_is_content_addressed(self):
        one = staged_mapping(fan_in_chain_expression(WIDTH))
        two = staged_mapping(fan_in_chain_expression(WIDTH))
        assert one is not two
        assert mapping_key(one) == mapping_key(two)

    def test_is_solution_against_staged(self):
        expr = fan_in_chain_expression(WIDTH)
        staged = staged_mapping(expr)
        source = Instance.build(
            {f"P{i}": [("a", "a")] for i in range(1, WIDTH + 1)}
        )
        solution = universal_solution(staged, source)
        assert is_solution(materialize(expr), source, solution)


class TestByteIdentity:
    @pytest.mark.parametrize("kind", ["unique", "subset", "invertibility"])
    def test_sweep_kinds_identical_across_plans(self, kind):
        expr = fan_in_chain_expression(WIDTH)
        renderings = {}
        for plan in ("materialize", "auto"):
            reset_all_caches()
            report = check_expression(expr, kind, plan=plan)
            renderings[plan] = report.render()
        assert renderings["materialize"] == renderings["auto"]

    def test_dead_branch_identical_across_plans(self):
        expr = dead_branch_expression(WIDTH)
        naive = check_expression(expr, "unique", plan="materialize").render()
        reset_all_caches()
        planned = check_expression(expr, "unique", plan="auto").render()
        assert naive == planned

    @pytest.mark.parametrize(
        "name,forward,reverse",
        [pair for pair in inverse_pairs()],
        ids=[pair[0] for pair in inverse_pairs()],
    )
    def test_inverse_kind_identical_across_plans(self, name, forward, reverse):
        renderings = set()
        for plan in ("materialize", "membership", "auto"):
            reset_all_caches()
            report = check_expression(
                forward, "inverse", reverse=reverse, plan=plan
            )
            renderings.add(report.render())
        assert len(renderings) == 1


class TestExpressionMembership:
    def test_matches_materialized_model_check(self):
        expr = parse_expression("compose(Decomposition, Decomposition')")
        concrete = materialize(expr)
        from repro.workloads import power_instances

        universe = list(
            power_instances(expr.source, ("a", "b"), max_facts=1)
        )
        for left in universe[:4]:
            for right in universe[:4]:
                assert expression_membership(
                    expr, left, right
                ) == is_solution(concrete, left, right)

    def test_union_is_conjunction(self):
        from repro.algebra.expr import UnionOf

        atom = parse_expression("Projection")
        expr = UnionOf(left=atom, right=parse_expression("Projection"))
        left = Instance.build({"P": [("a", "b")]})
        right = Instance.build({"Q": [("a",)]})
        assert expression_membership(expr, left, right)


class TestGovernedMembershipBudget:
    """Satellite: max_nulls trips in membership plans degrade coverage
    through the ReproError governance instead of crashing."""

    def _expr(self):
        return Compose(
            first=MappingAtom(mapping=projection_quasi_inverse()),
            second=MappingAtom(mapping=projection()),
        )

    def test_raw_test_raises_budget_error(self):
        from repro.core.framework import is_inverse
        from repro.workloads import power_instances

        fwd = projection_quasi_inverse()
        universe = list(
            power_instances(fwd.source, ("a", "b"), max_facts=1)
        )
        with pytest.raises(CompositionBudgetError):
            is_inverse(
                fwd,
                projection(),
                universe,
                max_nulls=0,
                composition_test=ExpressionPairTest(expr=self._expr()),
            )

    def test_membership_plan_degrades_to_partial_coverage(self):
        report = check_expression(
            "Projection'",
            "inverse",
            reverse="Projection",
            plan="membership",
            max_nulls=0,
        )
        assert report.coverage == "budget"

    def test_service_maps_trip_to_partial_state(self):
        from repro.service.protocol import STATE_PARTIAL, normalize_job

        spec = normalize_job(
            {
                "kind": "algebra",
                "expression": "Projection'",
                "check": "inverse",
                "reverse": "Projection",
                "plan": "membership",
            }
        )
        # the service has no max_nulls knob; exercise the degrade path
        # through check_expression's report instead
        report = check_expression(
            spec["expression"],
            spec["check"],
            reverse=spec["reverse"],
            plan=spec["plan"],
            max_nulls=0,
        )
        assert report.coverage == "budget"
        assert STATE_PARTIAL == "partial"


class TestServiceIntegration:
    def test_normalize_and_execute_algebra_job(self):
        from repro.service.jobs import execute_job
        from repro.service.protocol import job_key, normalize_job

        payload = {
            "kind": "algebra",
            "expression": "compose( Decomposition , Decomposition' )",
            "check": "unique",
            "plan": "auto",
        }
        spec = normalize_job(payload)
        assert spec["expression"] == "compose(Decomposition, Decomposition')"
        respaced = normalize_job(
            dict(payload, expression="compose(Decomposition,Decomposition')")
        )
        assert job_key(spec) == job_key(respaced)
        outcome = execute_job(spec)
        assert outcome.state == "done"
        assert "unique solutions" in outcome.rendering

    def test_explain_plan_appends_plan_section(self):
        from repro.service.jobs import execute_job
        from repro.service.protocol import normalize_job

        spec = normalize_job(
            {
                "kind": "algebra",
                "expression": "compose(Decomposition, Decomposition')",
                "check": "unique",
                "explain_plan": True,
            }
        )
        outcome = execute_job(spec)
        assert "plan: mode=" in outcome.rendering
        assert "estimates:" in outcome.rendering

    def test_submit_time_rejections(self):
        from repro.errors import ServiceProtocolError
        from repro.service.protocol import normalize_job

        with pytest.raises(ServiceProtocolError, match="does not parse"):
            normalize_job({"kind": "algebra", "expression": "compose(Zed, Q)"})
        with pytest.raises(ServiceProtocolError, match="unknown algebra check"):
            normalize_job(
                {"kind": "algebra", "expression": "Union", "check": "bogus"}
            )
        with pytest.raises(ServiceProtocolError, match="plan must be"):
            normalize_job(
                {"kind": "algebra", "expression": "Union", "plan": "bogus"}
            )
        with pytest.raises(ServiceProtocolError, match="reverse"):
            normalize_job(
                {"kind": "algebra", "expression": "Union", "check": "inverse"}
            )


class TestCliIntegration:
    def test_check_algebra_exit_and_report(self, capsys):
        from repro.cli import main

        code = main(
            [
                "check",
                "algebra",
                "compose(Decomposition, Decomposition')",
                "--check",
                "unique",
                "--plan",
                "auto",
                "--explain-plan",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "unique solutions" in out
        assert "plan: mode=auto" in out

    def test_plan_flag_exports_env(self, monkeypatch):
        import os

        from repro.cli import main

        monkeypatch.delenv("REPRO_PLAN", raising=False)
        main(
            [
                "check",
                "algebra",
                "compose(Decomposition, Decomposition')",
                "--check",
                "unique",
                "--plan",
                "materialize",
            ]
        )
        assert os.environ.get("REPRO_PLAN") == "materialize"
