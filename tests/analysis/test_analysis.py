"""Unit tests for classification and invertibility analysis."""

import pytest

from repro.analysis import classify_mapping, invertibility_report
from repro.catalog import (
    decomposition,
    example_5_4,
    projection,
    prop_3_12,
    thm_4_9,
    union_mapping,
)
from repro.workloads import instance_universe


class TestClassification:
    def test_projection_profile(self):
        profile = classify_mapping(projection())
        assert profile.is_lav and profile.is_gav and profile.is_full
        assert profile.n_dependencies == 1

    def test_decomposition_is_lav_not_gav(self):
        profile = classify_mapping(decomposition())
        assert profile.is_lav and not profile.is_gav

    def test_prop_3_12_is_neither(self):
        profile = classify_mapping(prop_3_12())
        assert profile.is_full and not profile.is_lav and not profile.is_gav

    def test_example_5_4_is_plain_tgds(self):
        profile = classify_mapping(example_5_4())
        assert profile.is_tgd and not profile.is_full and not profile.is_lav

    def test_describe_mentions_tags(self):
        assert "LAV" in classify_mapping(decomposition()).describe()
        assert "full" in classify_mapping(prop_3_12()).describe()


class TestInvertibilityReport:
    def test_projection_verdict(self):
        universe = instance_universe(projection().source, ["a", "b"], max_facts=1)
        report = invertibility_report(projection(), universe)
        assert report.certainly_not_invertible
        assert report.certainly_quasi_invertible
        assert not report.certainly_not_quasi_invertible
        assert "quasi-invertible" in report.verdict()

    def test_invertible_example_passes_everything(self):
        mapping = example_5_4()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        report = invertibility_report(mapping, universe)
        assert report.constant_propagation
        assert report.unique_solutions
        assert report.quasi_subset_property.holds
        assert report.verdict() == "all bounded checks pass"

    def test_unique_solutions_witness_surfaces(self):
        universe = instance_universe(union_mapping().source, ["a"], max_facts=1)
        report = invertibility_report(union_mapping(), universe)
        assert report.unique_solutions_witness is not None

    def test_full_flag_propagates(self):
        universe = instance_universe(thm_4_9().source, ["a"], max_facts=1)
        report = invertibility_report(thm_4_9(), universe)
        assert report.is_full and report.is_lav
