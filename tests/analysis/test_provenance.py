"""Unit tests for chase provenance."""

import pytest

from repro.analysis.provenance import (
    derivation_depths,
    explain_chase,
    fact_provenance,
)
from repro.chase.standard import chase
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.dependencies.parser import parse_dependencies


class TestFactProvenance:
    def test_input_fact(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.build({"P": [("a",)]}), deps)
        provenance = fact_provenance(result, atom("P", "a"))
        assert provenance.is_input_fact()
        assert "(input fact)" in provenance.describe()

    def test_produced_fact_names_its_premises(self):
        deps = parse_dependencies("E(x, z) & E(z, y) -> F(x, y)")
        source = Instance.build({"E": [("a", "b"), ("b", "c")]})
        result = chase(source, deps)
        provenance = fact_provenance(result, atom("F", "a", "c"))
        assert not provenance.is_input_fact()
        assert set(provenance.premise_facts()) == {
            atom("E", "a", "b"),
            atom("E", "b", "c"),
        }

    def test_unknown_fact_raises(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.build({"P": [("a",)]}), deps)
        with pytest.raises(KeyError):
            fact_provenance(result, atom("Q", "zzz"))


class TestExplainChase:
    def test_one_line_per_produced_fact(self):
        deps = parse_dependencies("P(x, y, z) -> Q(x, y) & R(y, z)")
        result = chase(Instance.build({"P": [("a", "b", "c")]}), deps)
        explanation = explain_chase(result)
        assert explanation.count("from") == 2
        assert "P(a, b, c)" in explanation

    def test_include_input_facts(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.build({"P": [("a",)]}), deps)
        explanation = explain_chase(result, produced_only=False)
        assert "(input fact)" in explanation


class TestDepths:
    def test_stratified_chase_has_depth_one(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.build({"P": [("a",)]}), deps)
        depths = derivation_depths(result)
        assert depths[atom("P", "a")] == 0
        assert depths[atom("Q", "a")] == 1

    def test_recursive_chase_depth_grows(self):
        deps = parse_dependencies(
            "E(x, y) -> T(x, y)\nT(x, z) & E(z, y) -> T(x, y)"
        )
        source = Instance.build({"E": [("a", "b"), ("b", "c"), ("c", "d")]})
        result = chase(source, deps, max_steps=100)
        depths = derivation_depths(result)
        assert depths[atom("T", "a", "b")] == 1
        assert depths[atom("T", "a", "d")] >= 2
