"""Tests pinning the catalog to the paper's definitions."""

import pytest

from repro.catalog import (
    all_catalog_mappings,
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    example_3_10_witnesses,
    example_4_5,
    example_5_4,
    figure_1_instance,
    projection,
    projection_quasi_inverse,
    prop_3_12,
    thm_4_8,
    thm_4_9,
    thm_4_10,
    thm_4_11,
    union_mapping,
    union_quasi_inverse,
)


class TestShapes:
    def test_every_mapping_is_well_formed(self):
        for mapping in all_catalog_mappings():
            assert mapping.is_tgd_mapping()
            assert mapping.source.is_disjoint_from(mapping.target)
            assert mapping.name

    def test_lav_members(self):
        lav = {m.name for m in all_catalog_mappings() if m.is_lav()}
        assert lav == {
            "Projection",
            "Union",
            "Decomposition",
            "Example4.5",
            "Thm4.8",
            "Thm4.9",
            "Thm4.11",
        }

    def test_full_members(self):
        full = {m.name for m in all_catalog_mappings() if m.is_full()}
        assert full == {
            "Projection",
            "Union",
            "Decomposition",
            "Prop3.12",
            "Thm4.9",
            "Thm4.10",
            "Thm4.11",
            "UniqueNotSubset",
        }

    def test_dependency_counts(self):
        assert len(projection().dependencies) == 1
        assert len(union_mapping().dependencies) == 2
        assert len(decomposition().dependencies) == 1
        assert len(example_4_5().dependencies) == 4
        assert len(thm_4_10().dependencies) == 8
        assert len(example_5_4().dependencies) == 3

    def test_reverse_mappings_point_backwards(self):
        pairs = [
            (projection(), projection_quasi_inverse()),
            (union_mapping(), union_quasi_inverse()),
            (decomposition(), decomposition_quasi_inverse_join()),
            (decomposition(), decomposition_quasi_inverse_split()),
        ]
        for forward, backward in pairs:
            assert backward.source == forward.target
            assert backward.target == forward.source


class TestInstances:
    def test_figure_1_instance(self):
        instance = figure_1_instance()
        assert len(instance) == 2
        assert instance.is_ground()

    def test_example_3_10_witnesses_differ_by_one_fact(self):
        left, right = example_3_10_witnesses()
        assert left.issubset(right)
        assert len(right) - len(left) == 1

    def test_prop_3_12_schemas(self):
        mapping = prop_3_12()
        assert mapping.source.arity("E") == 2
        assert mapping.target.arity("F") == 2
        assert mapping.target.arity("M") == 1
