"""Chaos harness: seeded fault schedules against the whole stack.

The contract under test is the PR's headline guarantee: **every run
under an injected fault schedule terminates in either a correct
verdict or a clean partial verdict — byte-identical to the fault-free
run once retries settle.**  Each scenario drives a real check (the
same :func:`repro.service.jobs.execute_job` the daemon and the CLI
share) under a deterministic :func:`~repro.engine.faults.fault_scope`
and compares the rendering byte for byte, then the subprocess tests
SIGKILL a live daemon at its nastiest moments and assert the restart
converges.

CI runs this as the ``chaos-smoke`` job.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys

import pytest

from repro.engine import (
    engine_stats,
    fault_scope,
    fork_available,
    fsck_checkpoint,
    fsck_store,
    reset_all_caches,
    reset_engine_stats,
    use_store,
)
from repro.engine.checkpoint import (
    CheckpointJournal,
    corrupt_entry_count,
    reset_corrupt_entry_count,
)
from repro.engine.store import entry_checksum
from repro.service.jobs import budget_for, execute_job
from repro.service.protocol import normalize_job

from tests.service.test_smoke import REPO_SRC, _spawn_daemon, _stop

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

SUBSET_SPEC = normalize_job(
    {"kind": "subset", "mapping": "Decomposition", "max_facts": 2}
)
UNIQUE_SPEC = normalize_job({"kind": "unique", "mapping": "Projection"})


@pytest.fixture(autouse=True)
def _clean():
    reset_all_caches()
    reset_engine_stats()
    reset_corrupt_entry_count()
    yield
    reset_all_caches()
    reset_engine_stats()
    reset_corrupt_entry_count()


def _run(spec, **kwargs):
    reset_all_caches()
    spec = dict(spec)
    kwargs.setdefault("budget", budget_for(spec))
    return execute_job(spec, **kwargs)


class TestByteIdentityUnderFaults:
    """Fault-free rendering == faulted rendering, byte for byte."""

    @pytest.mark.parametrize(
        "schedule",
        [
            "store.read:p=0.4,seed=11",
            "store.write:every=2",
            "store.read:p=0.3,seed=3;store.write:p=0.3,seed=5",
        ],
        ids=["read-p", "write-every", "read-and-write"],
    )
    def test_store_faults_never_change_the_verdict(self, tmp_path, schedule):
        baseline = _run(SUBSET_SPEC)
        with use_store(tmp_path / "chaos.sqlite"):
            with fault_scope(schedule):
                faulted = _run(SUBSET_SPEC)
            injected = engine_stats().counter("faults_injected")
        assert injected >= 1, "the schedule never fired — not a chaos run"
        assert faulted.rendering == baseline.rendering
        assert faulted.state == baseline.state
        assert faulted.exit_code == baseline.exit_code

    def test_dropped_journal_flushes_never_change_the_verdict(self, tmp_path):
        baseline = _run(SUBSET_SPEC)
        journal = CheckpointJournal(str(tmp_path / "journal.json"), interval=1)
        with fault_scope("journal.flush:every=2"):
            faulted = _run(SUBSET_SPEC, checkpoint=journal)
        assert engine_stats().counter("fault_journal_flush") >= 1
        assert faulted.rendering == baseline.rendering
        assert faulted.exit_code == baseline.exit_code

    @needs_fork
    def test_worker_kill_through_the_plane_matches_serial(self):
        baseline = _run({**SUBSET_SPEC, "workers": 1})
        with fault_scope("worker.kill:task=1"):
            faulted = _run({**SUBSET_SPEC, "workers": 2})
        assert faulted.rendering == baseline.rendering
        assert engine_stats().worker_faults >= 1

    def test_budget_expiry_is_a_clean_partial(self):
        with fault_scope({"budget.expire": {"resource": "instances", "after": 4}}):
            faulted = _run({**SUBSET_SPEC, "deadline": 3600.0})
        assert faulted.state == "partial"
        assert faulted.exit_code == 3
        assert faulted.coverage == "deadline"
        assert "coverage: deadline" in faulted.rendering


class TestCorruptionAndFsck:
    """fsck detects 100% of injected corruption; the repaired store
    reproduces identical verdicts."""

    def _mangle_store(self, path):
        """Corrupt rows four different ways; returns how many."""
        connection = sqlite3.connect(path)
        rows = connection.execute(
            "SELECT cache, key, value, engine FROM entries"
            " ORDER BY cache, key"
        ).fetchall()
        assert len(rows) >= 8, "sweep too small to fuzz"
        victims = rows[:: max(1, len(rows) // 8)][:8]
        with connection:
            for which, (cache_name, digest, payload, engine) in enumerate(
                victims
            ):
                if which % 4 == 0:
                    mutation = ("UPDATE entries SET value = value || 'X'", ())
                elif which % 4 == 1:
                    # Drop the last character — shrinks even the
                    # single-character verdict payloads.
                    mutation = (
                        "UPDATE entries SET value ="
                        " substr(value, 1, length(value) - 1)",
                        (),
                    )
                elif which % 4 == 2:
                    mutation = ("UPDATE entries SET checksum = 'bad'", ())
                else:
                    # Transplant: re-checksum under a foreign engine
                    # stamp so only the version check can catch it.
                    mutation = (
                        "UPDATE entries SET engine = 'evil',"
                        " checksum = ?",
                        (entry_checksum(cache_name, digest, payload, "evil"),),
                    )
                connection.execute(
                    mutation[0] + " WHERE cache = ? AND key = ?",
                    mutation[1] + (cache_name, digest),
                )
        connection.close()
        return len(victims)

    def test_fsck_detects_all_injected_store_corruption(self, tmp_path):
        path = str(tmp_path / "chaos.sqlite")
        with use_store(path):
            baseline = _run(SUBSET_SPEC)
        injected = self._mangle_store(path)

        report = fsck_store(path)
        assert report.corrupt == injected  # 100% detection
        assert not report.clean and report.repaired == 0

        repaired = fsck_store(path, repair=True)
        assert repaired.corrupt == injected
        assert repaired.quarantined == injected
        assert repaired.repaired == injected
        assert fsck_store(path).clean  # audit after repair: spotless

        # The repaired store serves the surviving rows and recomputes
        # the quarantined ones — identical verdict either way.
        with use_store(path) as store:
            warm = _run(SUBSET_SPEC)
            assert store.hits > 0
        assert warm.rendering == baseline.rendering
        assert warm.exit_code == baseline.exit_code

    def test_online_reads_survive_the_same_corruption(self, tmp_path):
        path = str(tmp_path / "chaos.sqlite")
        with use_store(path):
            baseline = _run(SUBSET_SPEC)
        injected = self._mangle_store(path)
        with use_store(path) as store:
            warm = _run(SUBSET_SPEC)
            assert store.integrity_errors >= 1
            assert store.quarantine_count() >= 1
            assert store.integrity_errors <= injected
        assert warm.rendering == baseline.rendering

    def test_truncated_journal_restarts_cleanly(self, tmp_path):
        path = str(tmp_path / "journal.json")
        journal = CheckpointJournal(path, interval=1)
        partial = _run(
            {**SUBSET_SPEC, "max_instances": 4}, checkpoint=journal
        )
        assert partial.state == "partial"
        raw = open(path, "r", encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(raw[: len(raw) // 2])  # torn mid-write

        baseline = _run(SUBSET_SPEC)
        resumed = _run(
            SUBSET_SPEC, checkpoint=CheckpointJournal(path, interval=1)
        )
        assert resumed.rendering == baseline.rendering
        assert resumed.state == baseline.state

    def test_tampered_journal_entry_is_dropped_and_fsck_repairs(self, tmp_path):
        path = str(tmp_path / "journal.json")
        partial = _run(
            {**SUBSET_SPEC, "max_instances": 4},
            checkpoint=CheckpointJournal(path, interval=1),
        )
        assert partial.state == "partial"
        state = json.loads(open(path, "r", encoding="utf-8").read())
        victim = next(key for key in state if key != "__meta__")
        state[victim]["verified_upto"] = 10_000  # lie about progress
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(state, handle)

        report = fsck_checkpoint(path)
        assert report.corrupt >= 1 and not report.clean
        repaired = fsck_checkpoint(path, repair=True)
        assert repaired.repaired >= 1
        assert os.path.exists(path + ".quarantine.json")
        assert fsck_checkpoint(path).clean

        baseline = _run(SUBSET_SPEC)
        resumed = _run(
            SUBSET_SPEC, checkpoint=CheckpointJournal(path, interval=1)
        )
        assert resumed.rendering == baseline.rendering
        assert corrupt_entry_count() == 0  # fsck already removed the lie


def _spawn_raw(state_dir, env_extra):
    """Spawn a daemon subprocess without waiting for readiness (the
    chaos schedules may SIGKILL it before the endpoint file lands)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    for name in (
        "REPRO_FAULTS",
        "REPRO_FAULT_KILL_TASK",
        "REPRO_FAULT_DELAY_TASK",
        "REPRO_ON_FAULT",
    ):
        env.pop(name, None)
    env.update(env_extra)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--max-jobs",
            "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )


class TestDaemonKill:
    """SIGKILL (not SIGTERM: no drain, no checkpoint flush, no clean
    marker) at the two nastiest job boundaries; restarts converge."""

    PAYLOAD = {"kind": "unique", "mapping": "Projection"}

    def test_kill_before_finalize_then_restart_completes(self, tmp_path):
        state = tmp_path / "state"
        # at=2: the first consult (before execute) passes, the second
        # (after execute, before finalize) kills — the job has done all
        # its work and the daemon dies holding the unfinalized outcome.
        process, client = _spawn_daemon(
            state, env_extra={"REPRO_FAULTS": "daemon.kill:at=2"}
        )
        try:
            job = client.submit(dict(self.PAYLOAD))
            job_id = job["id"]
            process.wait(timeout=120)
            assert process.returncode == -signal.SIGKILL
        finally:
            _stop(process)

        persisted = json.loads(
            (state / "jobs.json").read_text(encoding="utf-8")
        )
        assert persisted.get("clean") is False  # no drain happened
        assert persisted["jobs"][0]["state"] in ("queued", "running")

        process, client = _spawn_daemon(state)
        try:
            status, body = client.result(job_id, wait=120)
            assert status == 422  # Projection genuinely violates unique
            assert body["state"] == "violated"
            assert body["attempts"] == 1  # the crash was charged
            events = [event["event"] for event in body["events"]]
            assert "requeued" in events
        finally:
            _stop(process, client)

    def test_repeated_kills_quarantine_the_poison_job(self, tmp_path):
        state = tmp_path / "state"
        chaos_env = {
            "REPRO_FAULTS": "daemon.kill",  # every job execution kills
            "REPRO_SERVICE_JOB_RETRIES": "1",
        }
        process, client = _spawn_daemon(state, env_extra=chaos_env)
        try:
            job = client.submit(dict(self.PAYLOAD))
            job_id = job["id"]
            process.wait(timeout=120)
            assert process.returncode == -signal.SIGKILL
        finally:
            _stop(process)

        # Restart under the same chaos: the requeued job (attempt 1,
        # within budget) runs again and kills the daemon again.
        process = _spawn_raw(state, chaos_env)
        process.wait(timeout=120)
        assert process.returncode == -signal.SIGKILL

        # Third start: attempts exceed the budget at load time, the
        # job quarantines as faulted, and the daemon *stays up*.
        process, client = _spawn_daemon(state, env_extra=chaos_env)
        try:
            status, body = client.result(job_id, wait=60)
            assert status == 424 and body["state"] == "faulted"
            assert body["quarantined"] is True
            assert body["attempts"] == 2
            assert "quarantined" in body["outcome"]["rendering"]
            # The daemon is healthy and serves fresh (non-poison) work.
            assert client.health()["ready"] is True
        finally:
            _stop(process, client)


class TestClientChaosAgainstLiveDaemon:
    def test_dropped_and_reset_connections_are_idempotent(self, tmp_path):
        process, client = _spawn_daemon(
            tmp_path / "state",
            # Slow pool tasks: the job must still be in flight when the
            # retried duplicate submit arrives.
            env_extra={"REPRO_FAULT_DELAY_TASK": "*:0.2"},
        )
        try:
            payload = {
                "kind": "subset",
                "mapping": "Decomposition",
                "max_facts": 2,
                "workers": 2,
            }
            # Drop: the request never reaches the daemon; the retry
            # carries the identical payload.
            with fault_scope("client.drop:at=1"):
                first = client.submit(dict(payload))
            assert engine_stats().counter("fault_client_drop") == 1
            assert engine_stats().counter("client_retries") == 1
            assert not first["was_deduplicated"]

            # Reset: the daemon *processed* the submit but the client
            # never saw the response — the lost-response window.  The
            # retry must re-attach to the same job, not queue a second
            # chase: that is the content-addressed idempotency key.
            with fault_scope("client.reset:at=1"):
                second = client.submit(dict(payload))
            assert engine_stats().counter("fault_client_reset") == 1
            assert second["id"] == first["id"]
            assert second["was_deduplicated"]

            status, body = client.result(first["id"], wait=120)
            assert status == 200 and body["state"] == "done"
            stats = client.stats()
            assert stats["jobs_submitted"] == 1
            assert stats["jobs_executed"] == 1  # one chase, ever
            # Both phantom submissions joined as dedup hits.
            assert stats["dedup_hits"] == 2
        finally:
            _stop(process, client)
