"""Unit tests for the disjunctive chase (Definitions 6.3 / 6.4)."""

import pytest

from repro.chase.disjunctive import disjunctive_chase
from repro.chase.standard import ChaseError
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null
from repro.dependencies.parser import parse_dependencies, parse_dependency


class TestBranching:
    def test_union_example_branches_per_disjunct(self):
        deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
        tree = disjunctive_chase(Instance.build({"S": [("a",)]}), deps)
        leaves = tree.leaves()
        assert len(leaves) == 2
        assert {leaf.restrict_to(["P", "Q"]) for leaf in leaves} == {
            Instance.build({"P": [("a",)]}),
            Instance.build({"Q": [("a",)]}),
        }

    def test_branching_is_exponential_in_matches(self):
        deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
        source = Instance.build({"S": [("a",), ("b",), ("c",)]})
        tree = disjunctive_chase(source, deps)
        assert len(tree.leaves()) == 8
        assert tree.depth() == 3

    def test_non_disjunctive_dependency_gives_single_leaf(self):
        deps = parse_dependencies("Q(x, y) & R(y, z) -> P(x, y, z)")
        source = Instance.build({"Q": [("a", "b")], "R": [("b", "c")]})
        tree = disjunctive_chase(source, deps)
        assert len(tree.leaves()) == 1
        assert atom("P", "a", "b", "c") in tree.leaves()[0]


class TestApplicability:
    def test_satisfied_disjunct_blocks_application(self):
        # Definition 6.3: sigma applies only when NO disjunct extends.
        deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
        source = Instance.build({"S": [("a",)], "Q": [("a",)]})
        tree = disjunctive_chase(source, deps)
        assert len(tree.leaves()) == 1
        assert tree.leaves()[0] == source

    def test_existentials_get_fresh_nulls_per_branch(self):
        deps = (parse_dependency("S(x) -> P(x, y) | Q(x, y)"),)
        tree = disjunctive_chase(Instance.build({"S": [("a",)]}), deps)
        for leaf in tree.leaves():
            new_facts = leaf.difference(Instance.build({"S": [("a",)]}))
            for fact in new_facts:
                assert isinstance(fact.args[1], Null)

    def test_constant_guard_respected(self):
        deps = (parse_dependency("S(x) & Constant(x) -> P(x) | Q(x)"),)
        source = Instance.of([atom("S", Null("n"))])
        tree = disjunctive_chase(source, deps)
        assert len(tree.leaves()) == 1  # nothing applies

    def test_inequality_guard_respected(self):
        deps = (parse_dependency("S(x, y) & x != y -> P(x) | Q(x)"),)
        diagonal = Instance.build({"S": [("a", "a")]})
        assert len(disjunctive_chase(diagonal, deps).leaves()) == 1
        off_diagonal = Instance.build({"S": [("a", "b")]})
        assert len(disjunctive_chase(off_diagonal, deps).leaves()) == 2


class TestTreeStructure:
    def test_node_count_and_applied_metadata(self):
        deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
        tree = disjunctive_chase(Instance.build({"S": [("a",)]}), deps)
        assert tree.node_count == 3
        assert tree.root.applied == deps[0]
        assert tree.root.match is not None

    def test_distinct_leaves_deduplicates(self):
        deps = (parse_dependency("S(x) -> P(x) | P(x)"),)
        tree = disjunctive_chase(Instance.build({"S": [("a",)]}), deps)
        assert len(tree.leaves()) == 2
        assert len(tree.distinct_leaves()) == 1

    def test_max_nodes_guard(self):
        deps = (parse_dependency("S(x) -> P(x) | Q(x)"),)
        source = Instance.build({"S": [(str(i),) for i in range(20)]})
        with pytest.raises(ChaseError):
            disjunctive_chase(source, deps, max_nodes=100)

    def test_determinism(self):
        deps = (
            parse_dependency("S(x) -> P(x) | Q(x)"),
            parse_dependency("T(x) -> P(x) | R(x)"),
        )
        source = Instance.build({"S": [("a",)], "T": [("b",)]})
        first = disjunctive_chase(source, deps).leaves()
        second = disjunctive_chase(source, deps).leaves()
        assert first == second
