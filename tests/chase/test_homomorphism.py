"""Unit tests for the homomorphism engine."""

import pytest

from repro.chase.homomorphism import (
    all_homomorphisms,
    core,
    find_homomorphism,
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestPremiseMatching:
    def test_simple_match(self):
        target = Instance.build({"P": [("a", "b")]})
        found = find_homomorphism([atom("P", X, Y)], target)
        assert found == {X: Constant("a"), Y: Constant("b")}

    def test_join_across_atoms(self):
        target = Instance.build({"P": [("a", "b")], "Q": [("b", "c")]})
        found = find_homomorphism([atom("P", X, Y), atom("Q", Y, Z)], target)
        assert found[Y] == Constant("b")

    def test_join_failure(self):
        target = Instance.build({"P": [("a", "b")], "Q": [("c", "d")]})
        assert find_homomorphism([atom("P", X, Y), atom("Q", Y, Z)], target) is None

    def test_constants_in_atoms_must_match_exactly(self):
        target = Instance.build({"P": [("a", "b")]})
        assert find_homomorphism([atom("P", "a", Y)], target) is not None
        assert find_homomorphism([atom("P", "b", Y)], target) is None

    def test_repeated_variable_forces_equality(self):
        target = Instance.build({"P": [("a", "b")]})
        assert find_homomorphism([atom("P", X, X)], target) is None
        diagonal = Instance.build({"P": [("a", "a")]})
        assert find_homomorphism([atom("P", X, X)], diagonal) is not None

    def test_fixed_preassignment(self):
        target = Instance.build({"P": [("a", "b"), ("c", "d")]})
        found = find_homomorphism(
            [atom("P", X, Y)], target, fixed={X: Constant("c")}
        )
        assert found[Y] == Constant("d")

    def test_all_homomorphisms_enumerates_each_once(self):
        target = Instance.build({"P": [("a",), ("b",)]})
        found = list(all_homomorphisms([atom("P", X)], target))
        assert len(found) == 2
        assert len({tuple(sorted((k.name, str(v)) for k, v in h.items()))
                    for h in found}) == 2

    def test_empty_atom_list_yields_identity(self):
        assert find_homomorphism([], Instance.empty()) == {}


class TestConstraints:
    def test_constant_constraint_rejects_nulls(self):
        target = Instance.of([atom("P", Null("n"))])
        assert (
            find_homomorphism([atom("P", X)], target, constant_vars=[X]) is None
        )
        constants = Instance.build({"P": [("a",)]})
        assert (
            find_homomorphism([atom("P", X)], constants, constant_vars=[X])
            is not None
        )

    def test_inequality_constraint(self):
        target = Instance.build({"P": [("a", "a"), ("a", "b")]})
        found = list(
            all_homomorphisms([atom("P", X, Y)], target, inequalities=[(X, Y)])
        )
        assert len(found) == 1
        assert found[0][Y] == Constant("b")

    def test_inequality_between_null_and_constant_holds(self):
        target = Instance.of([atom("P", Null("n"), Constant("a"))])
        assert (
            find_homomorphism([atom("P", X, Y)], target, inequalities=[(X, Y)])
            is not None
        )

    def test_contradictory_fixed_assignment_yields_nothing(self):
        target = Instance.build({"P": [("a", "a")]})
        found = find_homomorphism(
            [atom("P", X, Y)],
            target,
            fixed={X: Constant("a"), Y: Constant("a")},
            inequalities=[(X, Y)],
        )
        assert found is None


class TestInstanceHomomorphisms:
    def test_nulls_are_mappable_constants_rigid(self):
        source = Instance.of([atom("P", Null("n"), "a")])
        target = Instance.build({"P": [("b", "a")]})
        assert instance_homomorphism(source, target) is not None
        reversed_target = Instance.build({"P": [("a", "b")]})
        assert instance_homomorphism(source, reversed_target) is None

    def test_subset_implies_homomorphism(self):
        small = Instance.build({"P": [("a",)]})
        big = Instance.build({"P": [("a",), ("b",)]})
        assert instance_homomorphism(small, big) is not None
        assert instance_homomorphism(big, small) is None

    def test_equivalence_with_redundant_null_fact(self):
        ground = Instance.build({"P": [("a",)]})
        padded = ground.union([atom("P", Null("n"))])
        assert is_homomorphically_equivalent(ground, padded)

    def test_non_equivalence_on_distinct_constants(self):
        left = Instance.build({"P": [("a",)]})
        right = Instance.build({"P": [("b",)]})
        assert not is_homomorphically_equivalent(left, right)

    def test_equivalence_is_reflexive_and_symmetric(self):
        left = Instance.build({"P": [("a",)]})
        padded = left.union([atom("P", Null("n"))])
        assert is_homomorphically_equivalent(left, left)
        assert is_homomorphically_equivalent(padded, left)


class TestCore:
    def test_core_removes_dominated_null_facts(self):
        instance = Instance.of([atom("P", "a"), atom("P", Null("n"))])
        reduced = core(instance)
        assert reduced == Instance.build({"P": [("a",)]})

    def test_core_of_ground_instance_is_itself(self):
        instance = Instance.build({"P": [("a", "b")]})
        assert core(instance) == instance

    def test_core_is_equivalent_to_input(self):
        instance = Instance.of(
            [atom("E", Null("n1"), Null("n2")), atom("E", "a", "b")]
        )
        reduced = core(instance)
        assert is_homomorphically_equivalent(reduced, instance)
        assert len(reduced) <= len(instance)

    def test_core_keeps_linked_nulls(self):
        # E(a, n) with no ground fact to absorb it: the null stays.
        instance = Instance.of([atom("E", "a", Null("n"))])
        assert core(instance) == instance
