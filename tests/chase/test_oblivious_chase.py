"""Unit tests for the oblivious chase variant and core solutions."""

import pytest

from repro.catalog import decomposition
from repro.chase.homomorphism import is_homomorphically_equivalent
from repro.chase.standard import ChaseError, chase
from repro.core.mapping import core_universal_solution, universal_solution
from repro.datamodel.instances import Instance
from repro.dependencies.parser import parse_dependencies, parse_dependency


class TestObliviousChase:
    def test_fires_on_every_match(self):
        deps = parse_dependencies("R(x, y) -> Q(x, y)\nP(x) -> Q(x, y)")
        source = Instance.build({"P": [("a",)], "R": [("a", "b")]})
        restricted = chase(source, deps)
        oblivious = chase(source, deps, oblivious=True)
        assert len(oblivious.produced) > len(restricted.produced)

    def test_result_is_homomorphically_equivalent_to_restricted(self):
        deps = parse_dependencies(
            "P(x, y, z) -> Q(x, y) & R(y, z)\nP(x, y, z) -> Q(x, z)"
        )
        source = Instance.build({"P": [("a", "b", "c"), ("a", "b", "d")]})
        restricted = chase(source, deps).instance
        oblivious = chase(source, deps, oblivious=True).instance
        assert is_homomorphically_equivalent(restricted, oblivious)

    def test_deterministic(self):
        deps = parse_dependencies("P(x) -> Q(x, y)")
        source = Instance.build({"P": [("a",), ("b",)]})
        assert (
            chase(source, deps, oblivious=True).instance
            == chase(source, deps, oblivious=True).instance
        )

    def test_rejects_recursive_dependency_sets(self):
        deps = parse_dependencies("E(x, y) -> T(x, y)\nT(x, z) & E(z, y) -> T(x, y)")
        with pytest.raises(ChaseError):
            chase(Instance.build({"E": [("a", "b")]}), deps, oblivious=True)

    def test_rejects_constraint_premises(self):
        deps = (parse_dependency("Q(x) & Constant(x) -> P(x)"),)
        with pytest.raises(ChaseError):
            chase(Instance.build({"Q": [("a",)]}), deps, oblivious=True)


class TestCoreSolutions:
    def test_core_is_no_larger(self):
        mapping = decomposition()
        source = Instance.build({"P": [("a", "b", "c")]})
        full = universal_solution(mapping, source)
        reduced = core_universal_solution(mapping, source)
        assert len(reduced) <= len(full)
        assert is_homomorphically_equivalent(reduced, full)

    def test_core_collapses_redundant_nulls(self):
        from repro.core.mapping import SchemaMapping
        from repro.datamodel.schemas import Schema

        mapping = SchemaMapping.from_text(
            Schema.of({"A": 1, "B": 2}),
            Schema.of({"C": 2}),
            "A(x) -> C(x, y)\nB(x, y) -> C(x, y)",
        )
        # A(a) yields C(a, null), dominated by B's ground C(a, b).
        source = Instance.build({"A": [("a",)], "B": [("a", "b")]})
        reduced = core_universal_solution(mapping, source)
        assert reduced.is_ground()

    def test_equivalent_sources_share_core_size(self):
        from repro.catalog import example_3_10_witnesses

        mapping = decomposition()
        left, right = example_3_10_witnesses()
        assert len(core_universal_solution(mapping, left)) == len(
            core_universal_solution(mapping, right)
        )
