"""Unit tests for the standard (restricted) chase."""

import pytest

from repro.chase.homomorphism import instance_homomorphism
from repro.chase.standard import ChaseError, NullFactory, chase
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null, Variable
from repro.dependencies.parser import parse_dependencies, parse_dependency


class TestBasicChasing:
    def test_full_tgd_materializes_conclusions(self):
        deps = parse_dependencies("P(x, y) -> Q(x)")
        result = chase(Instance.build({"P": [("a", "b")]}), deps)
        assert atom("Q", "a") in result.instance
        assert result.produced == Instance.build({"Q": [("a",)]})

    def test_existentials_invent_fresh_nulls(self):
        deps = parse_dependencies("P(x) -> Q(x, y)")
        result = chase(Instance.build({"P": [("a",), ("b",)]}), deps)
        q_facts = result.instance.facts_for("Q")
        nulls = {fact.args[1] for fact in q_facts}
        assert len(q_facts) == 2
        assert all(isinstance(n, Null) for n in nulls)
        assert len(nulls) == 2  # distinct nulls per firing

    def test_restricted_chase_skips_satisfied_premises(self):
        # Figure 1's shape: the decomposition produces exactly 4 facts.
        deps = parse_dependencies("P(x, y, z) -> Q(x, y) & R(y, z)")
        source = Instance.build({"P": [("a", "b", "c"), ("a'", "b", "c'")]})
        result = chase(source, deps)
        assert len(result.produced) == 4

    def test_restricted_chase_reuses_existing_witnesses(self):
        deps = parse_dependencies("R(x, y) -> Q(x, y)\nP(x) -> Q(x, y)")
        source = Instance.build({"P": [("a",)], "R": [("a", "b")]})
        result = chase(source, deps)
        # Q(a, b) (from the R-rule, fired first) satisfies the P-rule's
        # conclusion: no null is invented for it.
        assert result.instance.facts_for("Q") == (atom("Q", "a", "b"),)

    def test_multiple_premise_atoms_join(self):
        deps = parse_dependencies("E(x, z) & E(z, y) -> F(x, y)")
        source = Instance.build({"E": [("a", "b"), ("b", "c")]})
        result = chase(source, deps)
        assert result.produced == Instance.build({"F": [("a", "c")]})

    def test_chase_of_canonical_instance_with_variables(self):
        # Prime-instance chasing (Section 5): variables act as values.
        deps = parse_dependencies("R(x1, x2) -> S(x1, x2, y)")
        canonical = Instance.of([atom("R", Variable("x1"), Variable("x2"))])
        result = chase(canonical, deps)
        produced = result.produced.facts_for("S")
        assert len(produced) == 1
        assert produced[0].args[0] == Variable("x1")

    def test_empty_instance_chases_to_itself(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.empty(), deps)
        assert result.instance == Instance.empty()
        assert result.steps == ()


class TestConstraintsInPremises:
    def test_constant_guard_blocks_nulls(self):
        deps = (parse_dependency("Q(x) & Constant(x) -> P(x)"),)
        mixed = Instance.of([atom("Q", "a"), atom("Q", Null("n"))])
        result = chase(mixed, deps)
        assert result.produced == Instance.build({"P": [("a",)]})

    def test_inequality_guard(self):
        deps = (parse_dependency("Q(x, y) & x != y -> P(x, y)"),)
        source = Instance.build({"Q": [("a", "a"), ("a", "b")]})
        result = chase(source, deps)
        assert result.produced == Instance.build({"P": [("a", "b")]})


class TestEngineMechanics:
    def test_disjunctive_dependency_rejected(self):
        deps = (parse_dependency("P(x) -> Q(x) | R(x)"),)
        with pytest.raises(ChaseError):
            chase(Instance.build({"P": [("a",)]}), deps)

    def test_step_trace_records_firings(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        result = chase(Instance.build({"P": [("a",), ("b",)]}), deps)
        assert len(result.steps) == 2
        assert all(step.dependency == deps[0] for step in result.steps)

    def test_determinism(self):
        deps = parse_dependencies("P(x) -> Q(x, y)\nP(x) -> R(x)")
        source = Instance.build({"P": [("a",), ("b",), ("c",)]})
        assert chase(source, deps).instance == chase(source, deps).instance

    def test_fresh_nulls_avoid_existing_names(self):
        deps = parse_dependencies("P(x) -> Q(x, y)")
        taken = Instance.of([atom("P", "a"), atom("R", Null("y_N0"))])
        result = chase(taken.restrict_to(["P"]).union([atom("R", Null("y_N0"))]), deps)
        q_fact = result.instance.facts_for("Q")[0]
        assert q_fact.args[1] != Null("y_N0")

    def test_recursive_dependencies_reach_fixpoint(self):
        # Transitive closure over target-side recursion (full tgds).
        deps = parse_dependencies("E(x, y) -> T(x, y)\nT(x, z) & E(z, y) -> T(x, y)")
        # Premise relations overlap conclusion relations: general path.
        source = Instance.build({"E": [("a", "b"), ("b", "c"), ("c", "d")]})
        result = chase(source, deps, max_steps=100)
        assert atom("T", "a", "d") in result.instance

    def test_max_steps_guard(self):
        # A non-terminating chase: each firing creates a new premise.
        deps = parse_dependencies("P(x) -> P2(x, y)\nP2(x, y) -> P(y)")
        with pytest.raises(ChaseError):
            chase(Instance.build({"P": [("a",)]}), deps, max_steps=50)

    def test_null_factory_reservation(self):
        factory = NullFactory(taken=["N0"])
        assert factory.fresh().name != "N0"

    def test_null_factory_hints(self):
        factory = NullFactory()
        fresh = factory.fresh(hint="y")
        assert fresh.name.startswith("y_")


class TestUniversality:
    def test_chase_result_maps_into_every_solution(self):
        deps = parse_dependencies("P(x, y, z) -> Q(x, y) & R(y, z)")
        source = Instance.build({"P": [("a", "b", "c")]})
        universal = chase(source, deps).produced
        solutions = [
            Instance.build({"Q": [("a", "b")], "R": [("b", "c")]}),
            Instance.build(
                {"Q": [("a", "b"), ("x", "y")], "R": [("b", "c"), ("y", "z")]}
            ),
        ]
        for solution in solutions:
            assert instance_homomorphism(universal, solution) is not None

    def test_chase_result_does_not_map_into_non_solutions(self):
        deps = parse_dependencies("P(x, y, z) -> Q(x, y) & R(y, z)")
        source = Instance.build({"P": [("a", "b", "c")]})
        universal = chase(source, deps).produced
        non_solution = Instance.build({"Q": [("a", "b")]})
        assert instance_homomorphism(universal, non_solution) is None
