"""Shared fixtures: the paper's catalog mappings and small universes."""

from __future__ import annotations

import pytest

from repro.catalog import (
    decomposition,
    example_4_5,
    example_5_4,
    figure_1_instance,
    projection,
    prop_3_12,
    thm_4_8,
    thm_4_9,
    thm_4_10,
    thm_4_11,
    union_mapping,
)
from repro.workloads import instance_universe


@pytest.fixture(scope="session")
def projection_mapping():
    return projection()


@pytest.fixture(scope="session")
def union_m():
    return union_mapping()


@pytest.fixture(scope="session")
def decomposition_mapping():
    return decomposition()


@pytest.fixture(scope="session")
def example_4_5_mapping():
    return example_4_5()


@pytest.fixture(scope="session")
def example_5_4_mapping():
    return example_5_4()


@pytest.fixture(scope="session")
def prop_3_12_mapping():
    return prop_3_12()


@pytest.fixture(scope="session")
def thm_4_8_mapping():
    return thm_4_8()


@pytest.fixture(scope="session")
def thm_4_9_mapping():
    return thm_4_9()


@pytest.fixture(scope="session")
def thm_4_10_mapping():
    return thm_4_10()


@pytest.fixture(scope="session")
def thm_4_11_mapping():
    return thm_4_11()


@pytest.fixture(scope="session")
def figure_1():
    return figure_1_instance()


@pytest.fixture(scope="session")
def tiny_universe():
    """All ground instances over the decomposition source with ≤1 fact."""
    return instance_universe(decomposition().source, ["a", "b"], max_facts=1)
