"""Unit tests for composition membership and full-tgd composition."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    example_5_4,
    projection,
    thm_4_9,
    union_mapping,
)
from repro.core.composition import (
    CompositionBudgetError,
    compose_full,
    composition_membership,
)
from repro.core.inverse import inverse
from repro.core.mapping import MappingError, SchemaMapping, is_solution, universal_solution
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.workloads import instance_universe


class TestMembership:
    def test_identity_like_pair_accepted(self):
        mapping = decomposition()
        reverse = decomposition_quasi_inverse_join()
        source = Instance.build({"P": [("a", "b", "c")]})
        assert composition_membership(mapping, reverse, source, source)

    def test_superset_pairs_accepted(self):
        mapping = decomposition()
        reverse = decomposition_quasi_inverse_join()
        source = Instance.build({"P": [("a", "b", "c")]})
        bigger = source.union(Instance.build({"P": [("d", "e", "f")]}))
        assert composition_membership(mapping, reverse, source, bigger)

    def test_unreachable_pair_rejected(self):
        mapping = decomposition()
        reverse = decomposition_quasi_inverse_join()
        source = Instance.build({"P": [("a", "b", "c")]})
        other = Instance.build({"P": [("x", "y", "z")]})
        assert not composition_membership(mapping, reverse, source, other)

    def test_null_images_matter(self):
        # Projection with its quasi-inverse: the chase null must be
        # mappable to a constant for the reverse tgd to produce a
        # ground witness; membership explores those images.
        mapping = projection()
        reverse = SchemaMapping.from_text(
            mapping.target,
            mapping.source,
            "Q(x) & Constant(x) -> P(x, y)",
        )
        source = Instance.build({"P": [("a", "b")]})
        recovered = Instance.build({"P": [("a", "c")]})
        assert composition_membership(mapping, reverse, source, recovered)

    def test_budget_guard(self):
        from repro.catalog import thm_4_8, thm_4_8_inverse

        mapping = thm_4_8()  # each P-fact chases to a fresh null
        source = Instance.build(
            {"P": [(str(i), str(i + 1)) for i in range(10)]}
        )
        with pytest.raises(CompositionBudgetError):
            composition_membership(
                mapping, thm_4_8_inverse(), source, source, max_nulls=2
            )

    def test_empty_left_composes_with_everything_under_vacuous_reverse(self):
        mapping = union_mapping()
        reverse = SchemaMapping.from_text(
            mapping.target, mapping.source, "S(x) -> P(x)"
        )
        empty = Instance.empty()
        assert composition_membership(mapping, reverse, empty, empty)


class TestComposeFull:
    def test_requires_full_first_mapping(self):
        non_full = projection()  # full, so build a non-full one
        existential = SchemaMapping.from_text(
            Schema.of({"A": 1}), Schema.of({"B": 2}), "A(x) -> B(x, y)"
        )
        second = SchemaMapping.from_text(
            Schema.of({"B": 2}), Schema.of({"C": 1}), "B(x, y) -> C(x)"
        )
        with pytest.raises(MappingError):
            compose_full(existential, second)
        assert non_full.is_full()

    def test_requires_matching_middle_schema(self):
        first = projection()
        second = SchemaMapping.from_text(
            Schema.of({"X": 1}), Schema.of({"Y": 1}), "X(x) -> Y(x)"
        )
        with pytest.raises(MappingError):
            compose_full(first, second)

    def test_projection_then_copy(self):
        first = projection()  # P(x, y) -> Q(x)
        second = SchemaMapping.from_text(
            Schema.of({"Q": 1}), Schema.of({"T": 1}), "Q(x) -> T(x)"
        )
        composed = compose_full(first, second)
        source = Instance.build({"P": [("a", "b")]})
        assert universal_solution(composed, source) == Instance.build(
            {"T": [("a",)]}
        )

    def test_decomposition_then_join(self):
        first = decomposition()
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"W": 3}),
            "Q(x, y) & R(y, z) -> W(x, y, z)",
        )
        composed = compose_full(first, second)
        source = Instance.build({"P": [("a", "b", "c"), ("d", "b", "e")]})
        result = universal_solution(composed, source)
        # The composed mapping reproduces the join of the chase:
        # the cross product over the shared middle column.
        expected = universal_solution(
            second, universal_solution(first, source)
        )
        assert result == expected

    def test_agrees_with_membership_semantics(self):
        first = thm_4_9()
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"Out": 1}),
            "P2(x, x) -> Out(x)\nQ(x) -> Out(x)",
        )
        composed = compose_full(first, second)
        universe_left = instance_universe(first.source, ["a"], max_facts=2)
        universe_right = instance_universe(second.target, ["a"], max_facts=1)
        for left in universe_left:
            for right in universe_right:
                direct = is_solution(composed, left, right)
                via_membership = composition_membership(first, second, left, right)
                assert direct == via_membership
