"""Cross-validation between independent implementations.

The library often has two routes to the same semantics; these tests
pin them against each other:

* `compose_full` (generator resolution) vs `compose_skolem`
  (unification) on full first mappings;
* the (=, ∼M)-inverse layer: Example 3.10 establishes the stronger
  (=, ∼M)-subset property for Decomposition, so by Theorem 3.5 a
  (=, ∼M)-inverse exists — and the join reverse is one;
* the exhaustive and proof-based MinGen on the mappings the other
  tests do not cover.
"""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    thm_4_9,
    thm_4_10,
    thm_4_11,
)
from repro.chase.homomorphism import is_homomorphically_equivalent
from repro.core.composition import compose_full
from repro.core.framework import Equality, SolutionEquivalence, is_generalized_inverse
from repro.core.generators import (
    MinGenConfig,
    _canonical_key,
    minimal_generators,
    minimal_generators_exhaustive,
)
from repro.core.mapping import SchemaMapping, universal_solution
from repro.core.skolem import compose_skolem, skolem_exchange
from repro.datamodel.schemas import Schema
from repro.workloads import instance_universe, random_ground_instance


class TestCompositionRoutesAgree:
    @pytest.mark.parametrize("factory", [decomposition, thm_4_9, thm_4_10])
    def test_full_composition_vs_skolem_composition(self, factory):
        first = factory()
        # A second mapping copying one middle relation forward.
        relation, arity = first.target.relations[0]
        variables = ", ".join(f"x{i + 1}" for i in range(arity))
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"Out": arity}),
            f"{relation}({variables}) -> Out({variables})",
        )
        via_generators = compose_full(first, second)
        via_skolem = compose_skolem(first, second)
        for seed in range(3):
            source = random_ground_instance(
                first.source, seed=seed, n_facts=4, domain_size=2
            )
            left = universal_solution(via_generators, source)
            right = skolem_exchange(via_skolem, source)
            assert is_homomorphically_equivalent(left, right)


class TestMixedRelationInverse:
    def test_join_reverse_is_an_equality_similarity_inverse(self):
        # Example 3.10's stronger claim, checked through the generic
        # (∼1, ∼2) layer with ∼1 = equality.
        mapping = decomposition()
        reverse = decomposition_quasi_inverse_join()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        verdict = is_generalized_inverse(
            mapping,
            reverse,
            Equality(),
            SolutionEquivalence(mapping),
            universe,
        )
        assert verdict.holds


class TestMinGenOracleMore:
    @pytest.mark.parametrize("factory", [thm_4_9, thm_4_11])
    def test_proofs_match_exhaustive(self, factory):
        mapping = factory()
        for sigma in mapping.dependencies:
            goal = sigma.disjuncts[0]
            frontier = sigma.frontier()
            fast = minimal_generators(mapping, goal, frontier)
            slow = minimal_generators_exhaustive(
                mapping, goal, frontier, MinGenConfig(method="exhaustive")
            )
            assert {
                _canonical_key(g.atoms, frontier) for g in fast
            } == {_canonical_key(g.atoms, frontier) for g in slow}
