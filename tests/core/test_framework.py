"""Unit tests for the (∼1,∼2)-inverse framework (Section 3)."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    example_5_4,
    projection,
    prop_3_12,
    union_mapping,
    union_quasi_inverse,
)
from repro.core.framework import (
    Equality,
    SolutionEquivalence,
    is_generalized_inverse,
    is_inverse,
    is_quasi_inverse,
    subset_property,
    unique_solutions_property,
)
from repro.core.inverse import inverse
from repro.core.mapping import SchemaMapping
from repro.core.quasi_inverse import quasi_inverse
from repro.datamodel.instances import Instance
from repro.workloads import instance_universe


class TestEquivalenceRelations:
    def test_equality_relation(self):
        left = Instance.build({"P": [("a", "b")]})
        assert Equality().related(left, left)
        assert not Equality().related(left, Instance.build({"P": [("a", "c")]}))

    def test_solution_equivalence_is_coarser(self):
        mapping = projection()
        relation = SolutionEquivalence(mapping)
        left = Instance.build({"P": [("a", "b")]})
        right = Instance.build({"P": [("a", "c")]})
        assert relation.related(left, right)
        assert not Equality().related(left, right)

    def test_solution_equivalence_refines_nothing_on_invertible(self):
        # For an invertible mapping, ∼M coincides with equality
        # (the unique-solutions property) — Proposition 3.9's engine.
        mapping = example_5_4()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
        relation = SolutionEquivalence(mapping)
        for left in universe:
            for right in universe:
                assert relation.related(left, right) == (left == right)


class TestUniqueSolutions:
    def test_fails_for_the_intro_mappings(self):
        for mapping in (projection(), union_mapping(), decomposition()):
            universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
            holds, violations = unique_solutions_property(mapping, universe)
            assert not holds and violations

    def test_holds_for_the_invertible_example(self):
        mapping = example_5_4()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
        holds, violations = unique_solutions_property(mapping, universe)
        assert holds and not violations


class TestSubsetProperty:
    def test_decomposition_has_it(self):
        mapping = decomposition()
        universe = instance_universe(mapping.source, [0, 1], max_facts=1)
        relation = SolutionEquivalence(mapping)
        assert subset_property(mapping, relation, relation, universe).holds

    def test_even_the_stronger_variant(self):
        # Example 3.10 actually shows the (=, ∼M)-subset property.
        mapping = decomposition()
        universe = instance_universe(mapping.source, [0, 1], max_facts=1)
        report = subset_property(
            mapping, Equality(), SolutionEquivalence(mapping), universe
        )
        assert report.holds

    def test_prop_3_12_violation_found(self):
        mapping = prop_3_12()
        left = Instance.build({"E": [(0, 0)]})
        right = Instance.build({"E": [(0, 1), (0, 2), (1, 0), (1, 1)]})
        relation = SolutionEquivalence(mapping)
        report = subset_property(mapping, relation, relation, [left, right])
        assert not report.holds
        assert (left, right) in report.violations

    def test_equality_subset_property_fails_for_projection(self):
        # Projection lacks the (=,=)-subset property: P(a,b) and P(a,c)
        # have the same solutions but neither contains the other.
        mapping = projection()
        universe = [
            Instance.build({"P": [("a", "b")]}),
            Instance.build({"P": [("a", "c")]}),
        ]
        report = subset_property(
            mapping, Equality(), Equality(), universe,
            witness_universe=universe,
        )
        assert not report.holds

    def test_violation_listing_without_early_stop(self):
        mapping = projection()
        universe = [
            Instance.build({"P": [("a", "b")]}),
            Instance.build({"P": [("a", "c")]}),
        ]
        report = subset_property(
            mapping,
            Equality(),
            Equality(),
            universe,
            witness_universe=universe,
            stop_at_first_violation=False,
        )
        assert len(report.violations) == 2  # both directions


class TestInverseChecks:
    def test_paper_inverse_accepted(self):
        mapping = example_5_4()
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        assert is_inverse(mapping, inverse(mapping), universe).holds

    def test_wrong_candidate_rejected_with_witness(self):
        mapping = example_5_4()
        # A bogus reverse mapping that only recovers the diagonal: on
        # I1 = {R(a,b)} it recovers nothing, so (I1, ∅) lands in
        # Inst(M∘M') although it is not in Inst(Id).
        bogus = SchemaMapping.from_text(
            mapping.target, mapping.source, "U(x1) -> R(x1, x1)"
        )
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        verdict = is_inverse(mapping, bogus, universe)
        assert not verdict.holds
        assert verdict.mismatches[0][2] == "comp_only"

    def test_quasi_inverse_check_accepts_paper_quasi_inverses(self):
        mapping = union_mapping()
        universe = instance_universe(mapping.source, ["a"], max_facts=1)
        assert is_quasi_inverse(mapping, union_quasi_inverse(), universe).holds
        assert is_quasi_inverse(mapping, quasi_inverse(mapping), universe).holds

    def test_quasi_inverse_check_rejects_swapped_recovery(self):
        mapping = decomposition()
        # Reverses the join the wrong way round: Q and R transposed.
        swapped = SchemaMapping.from_text(
            mapping.target, mapping.source, "Q(x, y) & R(y, z) -> P(z, y, x)"
        )
        universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        assert not is_quasi_inverse(mapping, swapped, universe).holds

    def test_generalized_inverse_monotone_in_relations(self):
        # Proposition 3.7: a (=,=)-inverse is a (∼M,∼M)-inverse.
        mapping = example_5_4()
        computed = inverse(mapping)
        universe = instance_universe(mapping.source, ["a"], max_facts=1)
        equality = Equality()
        equivalence = SolutionEquivalence(mapping)
        assert is_generalized_inverse(
            mapping, computed, equality, equality, universe
        ).holds
        assert is_generalized_inverse(
            mapping, computed, equivalence, equivalence, universe
        ).holds

    def test_join_quasi_inverse_of_decomposition_is_not_an_inverse(self):
        # Quasi-inverse yes (Example 3.10), inverse no: on
        # I = {P(a,a,b), P(b,a,a)} the join re-derives P(b,a,b), so
        # (I, I) ∈ Inst(Id) but not in Inst(M∘M').  Two facts are
        # needed to expose this, so the universes differ in size.
        mapping = decomposition()
        reverse = decomposition_quasi_inverse_join()
        pair_universe = instance_universe(mapping.source, ["a", "b"], max_facts=2)
        verdict = is_inverse(mapping, reverse, pair_universe)
        assert not verdict.holds
        small_universe = instance_universe(mapping.source, ["a", "b"], max_facts=1)
        assert is_quasi_inverse(mapping, reverse, small_universe).holds
