"""Unit tests for minimal generators (Definitions 4.2/4.3, Lemma 4.4)."""

import pytest

from repro.catalog import decomposition, example_4_5, projection, union_mapping
from repro.core.generators import (
    Generator,
    MinGenBudgetError,
    MinGenConfig,
    _canonical_key,
    embeds_into,
    is_generator,
    lemma_4_4_bound,
    minimal_generators,
    minimal_generators_exhaustive,
)
from repro.datamodel.terms import Variable
from repro.dependencies.parser import parse_dependency

X1, X2 = Variable("x1"), Variable("x2")


def keys(generators, frontier):
    return {_canonical_key(g.atoms, frontier) for g in generators}


class TestIsGenerator:
    def test_premise_is_always_a_generator_of_its_conclusion(self):
        mapping = decomposition()
        sigma = mapping.dependencies[0]
        assert is_generator(
            mapping, sigma.premise.atoms, sigma.disjuncts[0], sigma.frontier()
        )

    def test_non_generator_rejected(self):
        mapping = example_4_5()
        goal = parse_dependency("U(x1) -> S(x1, x1, y) & Q(y, y)")
        premise = parse_dependency("T(x1, x1) -> S(x1, x1, y)").premise.atoms
        # T(x1,x1) alone produces S(x1,x1,x1) but no Q fact.
        assert not is_generator(mapping, premise, goal.disjuncts[0], (X1,))

    def test_generator_with_frontier_fixed(self):
        mapping = projection()
        goal = parse_dependency("P(x, u) -> Q(x)")
        assert is_generator(
            mapping, goal.premise.atoms, goal.disjuncts[0], goal.frontier()
        )


class TestLemmaBound:
    def test_bound_is_s1_times_s2(self):
        mapping = example_4_5()  # premises all single-atom: s1 = 1
        goal = parse_dependency("U(u) -> S(x1, x1, y) & Q(y, y)").disjuncts[0]
        assert lemma_4_4_bound(mapping, goal) == 2

    def test_bound_with_multi_atom_premise(self):
        from repro.catalog import prop_3_12

        goal = parse_dependency("E(u, v) -> F(x, y) & M(z)").disjuncts[0]
        assert lemma_4_4_bound(prop_3_12(), goal) == 4  # s1=2, s2=2


class TestPaperExamples:
    def test_union_generators_are_both_sources(self):
        mapping = union_mapping()
        sigma = mapping.dependencies[0]
        generators = minimal_generators(mapping, sigma.disjuncts[0], sigma.frontier())
        relations = sorted(g.atoms[0].relation for g in generators)
        assert relations == ["P", "Q"]

    def test_example_4_5_sigma2_has_paper_generators(self):
        mapping = example_4_5()
        sigma2 = parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)")
        generators = minimal_generators(mapping, sigma2.disjuncts[0], (X1,))
        shapes = sorted(
            tuple(sorted(a.relation for a in g.atoms)) for g in generators
        )
        assert ("U",) in shapes
        assert ("P",) in shapes
        assert ("R", "T") in shapes

    def test_generators_cover_the_frontier(self):
        mapping = example_4_5()
        sigma1 = mapping.dependencies[0]
        for generator in minimal_generators(
            mapping, sigma1.disjuncts[0], sigma1.frontier()
        ):
            variables = {v for a in generator.atoms for v in a.variables()}
            assert set(sigma1.frontier()) <= variables


class TestMinimality:
    def test_no_generator_embeds_into_another(self):
        mapping = example_4_5()
        sigma2 = parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)")
        generators = minimal_generators(mapping, sigma2.disjuncts[0], (X1,))
        for left in generators:
            for right in generators:
                if left is right:
                    continue
                assert not embeds_into(left, right.atom_set(), (X1,))

    def test_every_output_is_a_generator(self):
        mapping = example_4_5()
        sigma2 = parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)")
        goal = sigma2.disjuncts[0]
        for generator in minimal_generators(mapping, goal, (X1,)):
            assert is_generator(mapping, generator.atoms, goal, (X1,))


class TestEmbedsInto:
    def test_subset_up_to_renaming(self):
        small = Generator(
            parse_dependency("R(x1, z1) -> Q(x1)").premise.atoms, (X1,)
        )
        large = parse_dependency("R(x1, w) & T(w) -> Q(x1)").premise.atoms
        assert embeds_into(small, frozenset(large), (X1,))

    def test_z_must_not_collapse_onto_frontier(self):
        small = Generator(
            parse_dependency("R(x1, z1) -> Q(x1)").premise.atoms, (X1,)
        )
        diagonal = parse_dependency("R(x1, x1) -> Q(x1)").premise.atoms
        assert not embeds_into(small, frozenset(diagonal), (X1,))

    def test_z_renaming_must_be_injective(self):
        small = Generator(
            parse_dependency("R(z1, z2) -> Q(x1)").premise.atoms +
            parse_dependency("Q2(x1) -> Q(x1)").premise.atoms,
            (X1,),
        )
        merged = (
            parse_dependency("R(z1, z1) -> Q(x1)").premise.atoms
            + parse_dependency("Q2(x1) -> Q(x1)").premise.atoms
        )
        assert not embeds_into(small, frozenset(merged), (X1,))


class TestMethodsAgree:
    @pytest.mark.parametrize("factory", [projection, union_mapping, decomposition])
    def test_proofs_match_exhaustive_on_catalog(self, factory):
        mapping = factory()
        for sigma in mapping.dependencies:
            goal = sigma.disjuncts[0]
            frontier = sigma.frontier()
            fast = minimal_generators(mapping, goal, frontier)
            slow = minimal_generators_exhaustive(mapping, goal, frontier)
            assert keys(fast, frontier) == keys(slow, frontier)


class TestBudgets:
    def test_budget_error_on_tiny_budget(self):
        mapping = example_4_5()
        sigma = mapping.dependencies[1]
        config = MinGenConfig(max_candidates=1)
        with pytest.raises(MinGenBudgetError):
            minimal_generators(
                mapping, sigma.disjuncts[0], sigma.frontier(), config
            )

    def test_specialization_cap_keeps_general_form(self):
        mapping = decomposition()
        sigma = mapping.dependencies[0]
        config = MinGenConfig(max_specialization_vars=0)
        generators = minimal_generators(
            mapping, sigma.disjuncts[0], sigma.frontier(), config
        )
        assert generators  # the most general proofs survive
