"""Unit tests for logical implication between dependencies."""

import pytest

from repro.core.implication import logically_equivalent, logically_implies
from repro.dependencies.parser import parse_dependencies, parse_dependency


def implies(antecedent_text, consequent_text):
    return logically_implies(
        parse_dependencies(antecedent_text), parse_dependency(consequent_text)
    )


class TestPlainTgds:
    def test_self_implication(self):
        assert implies("P(x, y) -> Q(x)", "P(x, y) -> Q(x)")

    def test_weakening_the_conclusion(self):
        assert implies("P(x) -> Q(x, x)", "P(x) -> Q(x, y)")
        assert not implies("P(x) -> Q(x, y)", "P(x) -> Q(x, x)")

    def test_strengthening_the_premise(self):
        assert implies("P(x, y) -> Q(x)", "P(x, x) -> Q(x)")
        assert not implies("P(x, x) -> Q(x)", "P(x, y) -> Q(x)")

    def test_transitive_combination(self):
        assert implies("P(x) -> R(x)\nR(x) -> Q(x)", "P(x) -> Q(x)")
        assert not implies("P(x) -> R(x)\nR(x) -> Q(x)", "Q(x) -> P(x)")


class TestConstraints:
    def test_constant_guard_weakens_a_dependency(self):
        # With the guard, the premise matches fewer instances.
        assert implies("Q(x) -> P(x)", "Q(x) & Constant(x) -> P(x)")
        assert not implies("Q(x) & Constant(x) -> P(x)", "Q(x) -> P(x)")

    def test_inequality_guard_weakens_a_dependency(self):
        assert implies("Q(x, y) -> P(x, y)", "Q(x, y) & x != y -> P(x, y)")
        assert not implies("Q(x, y) & x != y -> P(x, y)", "Q(x, y) -> P(x, y)")

    def test_quotient_instantiations_are_checked(self):
        # The diagonal instantiation x = y falsifies this implication.
        assert not implies(
            "Q(x, y) & x != y -> P(x, y)", "Q(x, y) -> P(x, y)"
        )
        # But a diagonal-only consequent follows from a diagonal rule.
        assert implies("Q(x, x) -> P(x, x)", "Q(x, x) -> P(x, x)")


class TestDisjunctions:
    def test_disjunct_weakening(self):
        assert implies("S(x) -> P(x)", "S(x) -> P(x) | Q(x)")
        assert not implies("S(x) -> P(x) | Q(x)", "S(x) -> P(x)")

    def test_disjunctive_antecedent_needs_all_branches(self):
        # S -> P ∨ Q does not imply S -> P, but implies S -> Q ∨ P.
        assert implies("S(x) -> P(x) | Q(x)", "S(x) -> Q(x) | P(x)")


class TestMinimization:
    def _minimize(self, text):
        from repro.core.implication import minimize_dependency_set

        return minimize_dependency_set(parse_dependencies(text))

    def test_weaker_member_dropped(self):
        kept = self._minimize("Q(x) -> P(x, x)\nQ(x) -> P(x, y)")
        assert kept == parse_dependencies("Q(x) -> P(x, x)")

    def test_independent_members_kept(self):
        kept = self._minimize("Q(x) -> P(x)\nR(x) -> P(x)")
        assert len(kept) == 2

    def test_transitively_redundant_member_dropped(self):
        kept = self._minimize(
            "P(x) -> R(x)\nR(x) -> Q(x)\nP(x) -> Q(x)"
        )
        assert len(kept) == 2
        assert parse_dependencies("P(x) -> Q(x)")[0] not in kept

    def test_result_is_equivalent_to_input(self):
        original = parse_dependencies(
            "Q(x) -> P(x, x)\nQ(x) -> P(x, y)\nR(x) -> P(x, x)"
        )
        from repro.core.implication import minimize_dependency_set

        kept = minimize_dependency_set(original)
        assert logically_equivalent(original, kept)

    def test_lav_projection_output_simplifies(self):
        from repro.catalog import projection
        from repro.core.implication import minimize_dependency_set
        from repro.core.quasi_inverse import lav_quasi_inverse

        reverse = lav_quasi_inverse(projection())
        kept = minimize_dependency_set(reverse.dependencies)
        assert len(kept) == 1  # the diagonal rule implies the ∃ rule

    def test_singleton_untouched(self):
        kept = self._minimize("Q(x) -> P(x)")
        assert len(kept) == 1


class TestEquivalence:
    def test_renamed_sets_are_equivalent(self):
        left = parse_dependencies("P(x, y) -> Q(x)")
        right = parse_dependencies("P(a, b) -> Q(a)")
        assert logically_equivalent(left, right)

    def test_strictly_stronger_sets_are_not(self):
        left = parse_dependencies("Q(x) -> P(x)")
        right = parse_dependencies("Q(x) & Constant(x) -> P(x)")
        assert not logically_equivalent(left, right)
