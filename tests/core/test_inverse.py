"""Unit tests for the Inverse algorithm (Section 5)."""

import pytest

from repro.catalog import (
    decomposition,
    example_5_4,
    example_5_4_expected_inverse,
    projection,
    thm_4_8,
    thm_4_9,
)
from repro.core.inverse import (
    InverseError,
    constant_propagation_report,
    has_constant_propagation,
    inverse,
    omega,
    prime_atoms,
    restricted_growth_strings,
)
from repro.core.mapping import MappingError, SchemaMapping
from repro.datamodel.atoms import Atom
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dependencies.dependency import language_audit
from repro.dependencies.parser import parse_dependency

BELL = {1: 1, 2: 2, 3: 5, 4: 15}


class TestPrimeAtoms:
    @pytest.mark.parametrize("arity,count", sorted(BELL.items()))
    def test_counts_are_bell_numbers(self, arity, count):
        assert len(prime_atoms("R", arity)) == count

    def test_paper_order_for_ternary(self):
        rendered = [str(a) for a in prime_atoms("R", 3)]
        assert rendered == [
            "R(x1, x1, x1)",
            "R(x1, x1, x2)",
            "R(x1, x2, x1)",
            "R(x1, x2, x2)",
            "R(x1, x2, x3)",
        ]

    def test_restricted_growth_strings(self):
        assert list(restricted_growth_strings(2)) == [(1, 1), (1, 2)]
        assert list(restricted_growth_strings(0)) == [()]

    def test_prime_atoms_are_prime(self):
        for prime in prime_atoms("R", 4):
            seen = []
            for arg in prime.args:
                if arg not in seen:
                    seen.append(arg)
            assert seen == [Variable(f"x{i + 1}") for i in range(len(seen))]


class TestConstantPropagation:
    def test_example_5_4_propagates(self):
        assert constant_propagation_report(example_5_4()) == {"R": True}

    def test_projection_does_not(self):
        assert constant_propagation_report(projection()) == {"P": False}

    def test_per_relation_report(self):
        mapping = SchemaMapping.from_text(
            Schema.of({"A": 1, "B": 2}),
            Schema.of({"C": 1}),
            "A(x) -> C(x)\nB(x, y) -> C(x)",
        )
        assert constant_propagation_report(mapping) == {"A": True, "B": False}
        assert not has_constant_propagation(mapping)


class TestAlgorithm:
    def test_example_5_4_exact_output(self):
        computed = inverse(example_5_4())
        expected = {d.canonical_form() for d in example_5_4_expected_inverse()}
        assert {d.canonical_form() for d in computed.dependencies} == expected

    def test_halts_without_output_on_non_propagating_input(self):
        with pytest.raises(InverseError):
            inverse(projection())

    def test_output_is_full_with_constants_and_inequalities(self):
        computed = inverse(thm_4_8())
        features = language_audit(computed.dependencies)
        assert not features.existentials and not features.disjunctions
        assert features.constants
        assert all(
            d.premise.inequalities_among_constants() for d in computed.dependencies
        )

    def test_full_input_drops_constants(self):
        computed = inverse(thm_4_9())
        assert not language_audit(computed.dependencies).constants

    def test_full_input_keeps_constants_when_asked(self):
        computed = inverse(thm_4_9(), drop_constants_when_full=False)
        assert language_audit(computed.dependencies).constants

    def test_direction_reversed(self):
        mapping = example_5_4()
        computed = inverse(mapping)
        assert computed.source == mapping.target
        assert computed.target == mapping.source

    def test_rejects_non_tgd_mapping(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | Q(x)",
        )
        with pytest.raises(MappingError):
            inverse(reverse)


class TestOmega:
    def test_omega_of_the_equal_prime(self):
        alpha = prime_atoms("R", 2)[0]  # R(x1, x1)
        built = omega(example_5_4(), alpha)
        expected = parse_dependency(
            "Q(x1, y1) & S(x1, x1, y2) & U(x1) & Constant(x1) -> R(x1, x1)"
        )
        assert built.canonical_form() == expected.canonical_form()

    def test_omega_without_constants(self):
        alpha = prime_atoms("R", 2)[1]
        built = omega(example_5_4(), alpha, with_constants=False)
        assert not built.premise.constant_vars
        assert built.premise.inequalities

    def test_omega_rejects_lost_variables_without_existentials(self):
        alpha = Atom("P", (Variable("x1"), Variable("x2")))
        with pytest.raises(InverseError):
            omega(projection(), alpha)

    def test_omega_with_existentials_quantifies_lost_variables(self):
        alpha = Atom("P", (Variable("x1"), Variable("x2")))
        built = omega(projection(), alpha, allow_existentials=True)
        assert built.existential_variables(0) == (Variable("x2"),)

    def test_omega_none_on_unproductive_relation(self):
        mapping = SchemaMapping.from_text(
            Schema.of({"A": 1, "B": 1}),
            Schema.of({"C": 1}),
            "A(x) -> C(x)",
        )
        alpha = Atom("B", (Variable("x1"),))
        assert omega(mapping, alpha, allow_existentials=True) is None
        with pytest.raises(InverseError):
            omega(mapping, alpha)

    def test_decomposition_omega_is_the_join_rule(self):
        alpha = prime_atoms("P", 3)[-1]  # P(x1, x2, x3)
        built = omega(decomposition(), alpha)
        expected = parse_dependency(
            "Q(x1, x2) & R(x2, x3) & Constant(x1) & Constant(x2) & Constant(x3)"
            " & x1 != x2 & x1 != x3 & x2 != x3 -> P(x1, x2, x3)"
        )
        assert built.canonical_form() == expected.canonical_form()
