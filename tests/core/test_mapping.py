"""Unit tests for SchemaMapping and solution-space reasoning."""

import pytest

from repro.catalog import decomposition, example_3_10_witnesses, projection
from repro.core.mapping import (
    MappingError,
    SchemaMapping,
    data_exchange_equivalent,
    identity_mapping,
    is_solution,
    solutions_contained,
    universal_solution,
)
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.dependencies.dependency import DependencyError
from repro.dependencies.parser import parse_dependencies


class TestConstruction:
    def test_from_text(self):
        mapping = SchemaMapping.from_text(
            Schema.of({"P": 2}), Schema.of({"Q": 1}), "P(x, y) -> Q(x)"
        )
        assert len(mapping.dependencies) == 1

    def test_dependencies_validated_against_schemas(self):
        with pytest.raises(DependencyError):
            SchemaMapping.from_text(
                Schema.of({"P": 2}), Schema.of({"Q": 1}), "P(x) -> Q(x)"
            )

    def test_name_not_part_of_identity(self):
        left = projection()
        right = SchemaMapping(left.source, left.target, left.dependencies, name="other")
        assert left == right

    def test_classification(self):
        mapping = decomposition()
        assert mapping.is_tgd_mapping()
        assert mapping.is_full()
        assert mapping.is_lav()

    def test_augment_source(self):
        grown = projection().augment_source("Extra", 2)
        assert "Extra" in grown.source
        assert grown.dependencies == projection().dependencies


class TestIdentityMapping:
    def test_identity_dependencies(self):
        schema = Schema.of({"P": 2, "Q": 1})
        identity = identity_mapping(schema)
        assert len(identity.dependencies) == 2
        assert all(dep.is_full() and dep.is_lav() for dep in identity.dependencies)

    def test_identity_semantics_is_containment(self):
        schema = Schema.of({"P": 1})
        identity = identity_mapping(schema)
        small = Instance.build({"P": [("a",)]})
        big = Instance.build({"P": [("a",), ("b",)]})
        assert is_solution(identity, small, big)
        assert not is_solution(identity, big, small)


class TestUniversalSolution:
    def test_is_the_chase_restricted_to_target(self):
        mapping = decomposition()
        source = Instance.build({"P": [("a", "b", "c")]})
        solution = universal_solution(mapping, source)
        assert solution == Instance.build({"Q": [("a", "b")], "R": [("b", "c")]})

    def test_requires_tgd_mapping(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"Q": 1}),
            Schema.of({"P": 2}),
            "Q(x) & Constant(x) -> P(x, y)",
        )
        with pytest.raises(MappingError):
            universal_solution(reverse, Instance.build({"Q": [("a",)]}))

    def test_caching_returns_equal_results(self):
        mapping = decomposition()
        source = Instance.build({"P": [("a", "b", "c")]})
        assert universal_solution(mapping, source) is universal_solution(
            mapping, source
        )


class TestIsSolution:
    def test_model_checking_full_language(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | Q(x)",
        )
        target = Instance.build({"S": [("a",)]})
        assert is_solution(reverse, target, Instance.build({"P": [("a",)]}))
        assert is_solution(reverse, target, Instance.build({"Q": [("a",)]}))
        assert not is_solution(reverse, target, Instance.build({"P": [("b",)]}))

    def test_every_premise_match_must_be_satisfied(self):
        mapping = projection()
        source = Instance.build({"P": [("a", "b"), ("c", "d")]})
        assert not is_solution(mapping, source, Instance.build({"Q": [("a",)]}))
        assert is_solution(
            mapping, source, Instance.build({"Q": [("a",), ("c",)]})
        )


class TestSolutionSpaces:
    def test_containment_follows_source_containment(self):
        mapping = decomposition()
        small = Instance.build({"P": [("a", "b", "c")]})
        big = small.union(Instance.build({"P": [("d", "e", "f")]}))
        assert solutions_contained(mapping, big, small)
        assert not solutions_contained(mapping, small, big)

    def test_example_3_10_equivalence(self):
        mapping = decomposition()
        left, right = example_3_10_witnesses()
        assert data_exchange_equivalent(mapping, left, right)
        assert solutions_contained(mapping, left, right)
        assert solutions_contained(mapping, right, left)

    def test_projection_merges_second_coordinate(self):
        mapping = projection()
        left = Instance.build({"P": [("a", "b")]})
        right = Instance.build({"P": [("a", "c")]})
        assert data_exchange_equivalent(mapping, left, right)

    def test_equivalence_distinguishes_first_coordinate(self):
        mapping = projection()
        left = Instance.build({"P": [("a", "b")]})
        right = Instance.build({"P": [("c", "b")]})
        assert not data_exchange_equivalent(mapping, left, right)
