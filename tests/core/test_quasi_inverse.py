"""Unit tests for the QuasiInverse algorithm and the LAV construction."""

import pytest

from repro.catalog import (
    decomposition,
    example_4_5,
    example_4_5_expected_sigma1_prime,
    example_4_5_expected_sigma2_prime,
    projection,
    projection_quasi_inverse,
    thm_4_10,
    thm_4_11,
    union_mapping,
    union_quasi_inverse,
)
from repro.core.mapping import MappingError, SchemaMapping
from repro.core.quasi_inverse import lav_quasi_inverse, prune_disjuncts, quasi_inverse
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dependencies.dependency import language_audit
from repro.dependencies.parser import parse_dependency


class TestPaperOutputs:
    def test_union_output_matches_paper(self):
        computed = quasi_inverse(union_mapping())
        assert len(computed.dependencies) == 1
        assert (
            computed.dependencies[0].canonical_form()
            == union_quasi_inverse().dependencies[0].canonical_form()
        )

    def test_projection_output_matches_paper(self):
        computed = quasi_inverse(projection())
        assert (
            computed.dependencies[0].canonical_form()
            == projection_quasi_inverse().dependencies[0].canonical_form()
        )

    def test_example_4_5_sigma_primes(self):
        computed = quasi_inverse(example_4_5())
        keys = {d.canonical_form() for d in computed.dependencies}
        assert example_4_5_expected_sigma1_prime().canonical_form() in keys
        assert example_4_5_expected_sigma2_prime().canonical_form() in keys


class TestDirectionAndLanguage:
    def test_output_direction_is_target_to_source(self):
        mapping = decomposition()
        computed = quasi_inverse(mapping)
        assert computed.source == mapping.target
        assert computed.target == mapping.source

    def test_inequalities_are_among_constants(self):
        # Theorem 4.1's refinement: the produced inequalities relate
        # Constant()-guarded variables only.
        computed = quasi_inverse(example_4_5())
        for dependency in computed.dependencies:
            assert dependency.premise.inequalities_among_constants()

    def test_full_input_drops_constants(self):
        computed = quasi_inverse(decomposition())
        assert not language_audit(computed.dependencies).constants

    def test_full_input_keeps_constants_when_asked(self):
        computed = quasi_inverse(decomposition(), drop_constants_when_full=False)
        assert language_audit(computed.dependencies).constants

    def test_non_tgd_input_rejected(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | Q(x)",
        )
        with pytest.raises(MappingError):
            quasi_inverse(reverse)


class TestPruning:
    def test_implied_disjunct_removed(self):
        x1 = Variable("x1")
        specific = parse_dependency("T(x1, x1) & R(x1, x1, x4) -> S(x1)").premise.atoms
        general = parse_dependency("T(x3, x1) & R(x3, x3, x4) -> S(x1)").premise.atoms
        kept = prune_disjuncts([specific, general], (x1,))
        assert kept == (general,) or list(kept) == [general]

    def test_equivalent_disjuncts_keep_one(self):
        x = Variable("x")
        left = parse_dependency("P(x, z1) -> S(x)").premise.atoms
        right = parse_dependency("P(x, w) -> S(x)").premise.atoms
        kept = prune_disjuncts([left, right], (x,))
        assert len(kept) == 1

    def test_incomparable_disjuncts_both_kept(self):
        x = Variable("x")
        left = parse_dependency("P(x) -> S(x)").premise.atoms
        right = parse_dependency("Q(x) -> S(x)").premise.atoms
        assert len(prune_disjuncts([left, right], (x,))) == 2

    def test_unpruned_output_is_larger(self):
        pruned = quasi_inverse(example_4_5())
        unpruned = quasi_inverse(example_4_5(), prune_implied=False)
        assert sum(len(d.disjuncts) for d in unpruned.dependencies) > sum(
            len(d.disjuncts) for d in pruned.dependencies
        )


class TestDisjunctions:
    def test_thm_4_10_needs_disjunctions(self):
        computed = quasi_inverse(thm_4_10())
        assert any(len(d.disjuncts) > 1 for d in computed.dependencies)

    def test_rij_rules_reverse_without_disjunction(self):
        computed = quasi_inverse(thm_4_10())
        rij = [
            d
            for d in computed.dependencies
            if d.premise.atoms[0].relation.startswith("R")
        ]
        assert rij and all(len(d.disjuncts) == 1 for d in rij)


class TestLavConstruction:
    def test_requires_lav(self):
        from repro.catalog import prop_3_12

        with pytest.raises(MappingError):
            lav_quasi_inverse(prop_3_12())

    def test_disjunction_free_with_constants_and_inequalities(self):
        computed = lav_quasi_inverse(decomposition())
        features = language_audit(computed.dependencies)
        assert not features.disjunctions
        assert features.constants and features.inequalities
        assert all(
            d.premise.inequalities_among_constants()
            for d in computed.dependencies
        )

    def test_projection_rule_matches_paper(self):
        computed = lav_quasi_inverse(projection())
        expected = parse_dependency("Q(x1) & Constant(x1) -> P(x1, x2)")
        keys = {d.canonical_form() for d in computed.dependencies}
        assert expected.canonical_form() in keys

    def test_union_gives_conjunctive_variant(self):
        computed = lav_quasi_inverse(union_mapping())
        expected = {
            parse_dependency("S(x1) & Constant(x1) -> P(x1)").canonical_form(),
            parse_dependency("S(x1) & Constant(x1) -> Q(x1)").canonical_form(),
        }
        assert {d.canonical_form() for d in computed.dependencies} == expected

    def test_existentials_for_lost_positions(self):
        computed = lav_quasi_inverse(thm_4_11())
        assert language_audit(computed.dependencies).existentials

    def test_one_rule_per_productive_prime_atom(self):
        computed = lav_quasi_inverse(decomposition())
        # P/3 has five prime atoms, all productive.
        assert len(computed.dependencies) == 5
