"""Tests for the Introduction's robustness claims.

Adding a relation symbol to the source schema destroys inverses but
not quasi-inverses:

* if M is invertible, M* = (S ∪ {R}, T, Σ) is no longer invertible;
* every inverse of M is a quasi-inverse of M*;
* if M' is a quasi-inverse of M, then M'' = (T, S ∪ {R}, Σ') is a
  quasi-inverse of M*.
"""

import pytest

from repro.catalog import example_5_4, union_mapping, union_quasi_inverse
from repro.core.framework import is_inverse, is_quasi_inverse
from repro.core.inverse import inverse
from repro.core.mapping import SchemaMapping
from repro.workloads import instance_universe


@pytest.fixture(scope="module")
def augmented_invertible():
    mapping = example_5_4()
    return mapping, mapping.augment_source("Extra", 1)


class TestAugmentationBreaksInverses:
    def test_augmented_mapping_is_not_invertible(self, augmented_invertible):
        mapping, augmented = augmented_invertible
        computed = inverse(mapping)
        lifted = SchemaMapping(
            computed.source,
            augmented.source,
            computed.dependencies,
            name="lifted-inverse",
        )
        universe = instance_universe(augmented.source, ["a"], max_facts=1)
        verdict = is_inverse(augmented, lifted, universe)
        assert not verdict.holds
        # The witness: an Extra-fact cannot be recovered, so a pair in
        # Inst(M*∘M') escapes Inst(Id).
        assert any(kind == "comp_only" for _, _, kind in verdict.mismatches)

    def test_inverse_of_m_is_quasi_inverse_of_m_star(self, augmented_invertible):
        mapping, augmented = augmented_invertible
        computed = inverse(mapping)
        lifted = SchemaMapping(
            computed.source,
            augmented.source,
            computed.dependencies,
            name="lifted-inverse",
        )
        universe = instance_universe(augmented.source, ["a"], max_facts=1)
        assert is_quasi_inverse(augmented, lifted, universe).holds


class TestQuasiInversesSurvive:
    def test_lifted_quasi_inverse_still_works(self):
        mapping = union_mapping()
        augmented = mapping.augment_source("Extra", 1)
        reverse = union_quasi_inverse()
        lifted = SchemaMapping(
            reverse.source,
            augmented.source,
            reverse.dependencies,
            name="lifted-QI",
        )
        universe = instance_universe(augmented.source, ["a"], max_facts=1)
        assert is_quasi_inverse(augmented, lifted, universe).holds

    def test_augmenting_twice_composes(self):
        mapping = union_mapping().augment_source("X1", 1).augment_source("X2", 2)
        assert "X1" in mapping.source and "X2" in mapping.source
        assert mapping.dependencies == union_mapping().dependencies
