"""Unit tests for skolemized mappings and syntactic composition."""

import pytest

from repro.catalog import decomposition, projection, thm_4_8, union_mapping
from repro.chase.homomorphism import is_homomorphically_equivalent
from repro.core.mapping import MappingError, SchemaMapping, universal_solution
from repro.core.skolem import (
    SkolemMapping,
    SkolemTerm,
    compose_skolem,
    skolem_exchange,
    skolemize,
)
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dataexchange.exchange import exchange
from repro.workloads import random_ground_instance, random_lav_mapping


class TestSkolemize:
    def test_existentials_become_function_terms(self):
        skolemized = skolemize(thm_4_8())
        rule = skolemized.rules[0]
        terms = [arg for atom in rule.conclusion for arg in atom.args]
        functions = [t for t in terms if isinstance(t, SkolemTerm)]
        assert functions
        # The same existential variable becomes the same function term.
        assert functions[0] == functions[1]

    def test_functions_depend_on_the_frontier(self):
        skolemized = skolemize(projection().augment_target("Extra", 1))
        # Projection is full: no function terms at all.
        assert not any(
            isinstance(arg, SkolemTerm)
            for rule in skolemized.rules
            for atom in rule.conclusion
            for arg in atom.args
        )

    def test_distinct_tgds_get_distinct_functions(self):
        mapping = SchemaMapping.from_text(
            Schema.of({"A": 1, "B": 1}),
            Schema.of({"C": 2}),
            "A(x) -> C(x, y)\nB(x) -> C(x, y)",
        )
        skolemized = skolemize(mapping)
        functions = {
            arg.function
            for rule in skolemized.rules
            for atom in rule.conclusion
            for arg in atom.args
            if isinstance(arg, SkolemTerm)
        }
        assert len(functions) == 2

    def test_requires_tgd_mapping(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | Q(x)",
        )
        with pytest.raises(MappingError):
            skolemize(reverse)


class TestSkolemExchange:
    @pytest.mark.parametrize(
        "factory", [projection, union_mapping, decomposition, thm_4_8]
    )
    def test_equivalent_to_the_chase(self, factory):
        mapping = factory()
        source = random_ground_instance(
            mapping.source, seed=1, n_facts=4, domain_size=3
        )
        direct = universal_solution(mapping, source)
        via_skolem = skolem_exchange(skolemize(mapping), source)
        assert is_homomorphically_equivalent(direct, via_skolem)

    def test_function_terms_are_memoized(self):
        # Two conclusion atoms sharing one existential share its null.
        skolemized = skolemize(thm_4_8())
        result = skolem_exchange(skolemized, Instance.build({"P": [("a", "b")]}))
        facts = result.facts_for("Q")
        assert len(facts) == 2
        middles = {facts[0].args[1], facts[1].args[0]}
        assert len(middles) == 1  # Q(a, z) and Q(z, b) share z

    def test_random_lav_mappings(self):
        for seed in range(5):
            mapping = random_lav_mapping(seed, n_source=2, n_target=2, n_tgds=3)
            source = random_ground_instance(
                mapping.source, seed=seed, n_facts=3, domain_size=2
            )
            assert is_homomorphically_equivalent(
                universal_solution(mapping, source),
                skolem_exchange(skolemize(mapping), source),
            )


class TestComposeSkolem:
    def _two_step(self, first, second, source):
        middle = exchange(first, source)
        return exchange(second, middle.restrict_to(second.source))

    def test_composition_through_shared_nulls(self):
        # The second mapping joins through the first's skolem value.
        first = thm_4_8()  # P(x,y) -> ∃z Q(x,z) ∧ Q(z,y)
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"W": 2}),
            "Q(u, v) & Q(v, w) -> W(u, w)",
        )
        composed = compose_skolem(first, second)
        source = Instance.build({"P": [("a", "b"), ("b", "c")]})
        expected = self._two_step(first, second, source)
        measured = skolem_exchange(composed, source)
        assert is_homomorphically_equivalent(expected, measured)

    def test_composition_simple_projection_chain(self):
        first = decomposition()
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"W": 2}),
            "Q(x, y) -> W(x, y)",
        )
        composed = compose_skolem(first, second)
        source = Instance.build({"P": [("a", "b", "c")]})
        assert skolem_exchange(composed, source) == Instance.build(
            {"W": [("a", "b")]}
        )

    def test_unproducible_premise_gives_no_rules(self):
        first = projection()  # only Q is populated
        second = SchemaMapping.from_text(
            Schema.of({"Q": 1, "Dead": 1}),
            Schema.of({"W": 1}),
            "Dead(x) -> W(x)",
        )
        first = SchemaMapping(
            first.source,
            first.target.augment("Dead", 1),
            first.dependencies,
            name=first.name,
        )
        composed = compose_skolem(first, second)
        assert composed.rules == ()

    def test_null_demanding_premise_is_dropped(self):
        # The second mapping requires a Q-pair whose first column is a
        # skolem value AND a source constant simultaneously — dropped.
        first = SchemaMapping.from_text(
            Schema.of({"P": 1}),
            Schema.of({"Q": 2}),
            "P(x) -> Q(x, y)",
        )
        second = SchemaMapping.from_text(
            first.target,
            Schema.of({"W": 1}),
            "Q(u, v) & Q(v, u2) -> W(u)",
        )
        composed = compose_skolem(first, second)
        source = Instance.build({"P": [("a",)]})
        # Q(a, n) cannot chain with Q(n, ·) on a ground source.
        assert skolem_exchange(composed, source) == Instance.empty()
        assert self._two_step(first, second, source) == Instance.empty()

    def test_agreement_on_random_lav_pipelines(self):
        for seed in range(4):
            first = random_lav_mapping(seed, n_source=2, n_target=2, n_tgds=2)
            second = random_lav_mapping(
                seed + 100,
                n_source=len(first.target.relations),
                n_target=2,
                n_tgds=2,
            )
            # Align second's source schema with first's target schema.
            second = _align(second, first.target)
            if second is None:
                continue
            composed = compose_skolem(first, second)
            source = random_ground_instance(
                first.source, seed=seed, n_facts=3, domain_size=2
            )
            expected = self._two_step(first, second, source)
            measured = skolem_exchange(composed, source)
            assert is_homomorphically_equivalent(expected, measured)

    def test_middle_schema_mismatch_rejected(self):
        with pytest.raises(MappingError):
            compose_skolem(projection(), projection())


def _align(mapping, middle_schema):
    """Rename the mapping's source relations onto *middle_schema* and
    its target relations apart from it (C-prefixed), so the pipeline's
    schemas stay pairwise disjoint.

    Returns None when the arities cannot be matched one-to-one.
    """
    from repro.datamodel.atoms import Atom
    from repro.dependencies.dependency import Dependency, Premise

    old = list(mapping.source.relations)
    new = list(middle_schema.relations)
    if sorted(arity for _, arity in old) != sorted(arity for _, arity in new):
        return None
    renaming = {}
    remaining = list(new)
    for name, arity in old:
        for candidate in remaining:
            if candidate[1] == arity:
                renaming[name] = candidate[0]
                remaining.remove(candidate)
                break
        else:
            return None
    target_renaming = {
        name: f"C{index + 1}"
        for index, (name, _) in enumerate(mapping.target.relations)
    }
    target = Schema.of(
        {target_renaming[name]: arity for name, arity in mapping.target.relations}
    )
    dependencies = []
    for dep in mapping.dependencies:
        premise_atoms = tuple(
            Atom(renaming[a.relation], a.args) for a in dep.premise.atoms
        )
        conclusion = tuple(
            Atom(target_renaming[a.relation], a.args)
            for a in dep.disjuncts[0]
        )
        dependencies.append(
            Dependency(Premise(premise_atoms), (conclusion,))
        )
    return SchemaMapping(
        middle_schema, target, tuple(dependencies), name=mapping.name
    )
