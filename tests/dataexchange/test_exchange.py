"""Unit tests for forward / reverse exchange and round trips."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    figure_1_instance,
    union_mapping,
    union_quasi_inverse,
)
from repro.core.mapping import MappingError, SchemaMapping
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema, SchemaError
from repro.dataexchange.exchange import exchange, reverse_exchange, round_trip


class TestForward:
    def test_exchange_restricts_to_target(self):
        mapping = decomposition()
        result = exchange(mapping, figure_1_instance())
        assert set(result.relations()) <= set(mapping.target.names())

    def test_exchange_validates_source(self):
        mapping = decomposition()
        with pytest.raises(SchemaError):
            exchange(mapping, Instance.build({"X": [("a",)]}))

    def test_exchange_requires_tgd_mapping(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | Q(x)",
        )
        with pytest.raises(MappingError):
            exchange(reverse, Instance.build({"S": [("a",)]}))

    def test_figure_1_exchange(self):
        result = exchange(decomposition(), figure_1_instance())
        assert result == Instance.build(
            {"Q": [("a", "b"), ("a'", "b")], "R": [("b", "c"), ("b", "c'")]}
        )


class TestReverse:
    def test_deterministic_reverse_for_tgd_mapping(self):
        target = exchange(decomposition(), figure_1_instance())
        recovered = reverse_exchange(decomposition_quasi_inverse_join(), target)
        assert len(recovered) == 1

    def test_disjunctive_reverse_enumerates_worlds(self):
        target = Instance.build({"S": [("a",), ("b",)]})
        recovered = reverse_exchange(union_quasi_inverse(), target)
        assert len(recovered) == 4  # 2 disjuncts ^ 2 facts

    def test_reverse_results_restricted_to_source_schema(self):
        target = exchange(decomposition(), figure_1_instance())
        for recovered in reverse_exchange(
            decomposition_quasi_inverse_split(), target
        ):
            assert set(recovered.relations()) <= {"P"}

    def test_duplicate_worlds_are_deduplicated(self):
        reverse = SchemaMapping.from_text(
            Schema.of({"S": 1}),
            Schema.of({"P": 1, "Q": 1}),
            "S(x) -> P(x) | P(x)",
        )
        recovered = reverse_exchange(reverse, Instance.build({"S": [("a",)]}))
        assert len(recovered) == 1


class TestRoundTrip:
    def test_round_trip_structure(self):
        trip = round_trip(
            decomposition(), decomposition_quasi_inverse_join(), figure_1_instance()
        )
        assert trip.source == figure_1_instance()
        assert len(trip.recovered) == len(trip.re_exported) == 1

    def test_round_trip_with_branching(self):
        source = Instance.build({"P": [("a",)], "Q": [("b",)]})
        trip = round_trip(union_mapping(), union_quasi_inverse(), source)
        assert len(trip.recovered) == 4
        assert len(trip.re_exported) == 4

    def test_pretty_includes_all_stages(self):
        trip = round_trip(
            decomposition(), decomposition_quasi_inverse_join(), figure_1_instance()
        )
        rendered = trip.pretty()
        assert "U = chase_Σ(I)" in rendered
        assert "V1" in rendered
