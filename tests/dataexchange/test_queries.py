"""Unit tests for conjunctive queries and certain answers."""

import pytest

from repro.catalog import decomposition, projection
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Variable
from repro.dataexchange.queries import (
    ConjunctiveQuery,
    certain_answers,
    evaluate,
    parse_query,
)
from repro.dependencies.parser import ParseError


class TestParsing:
    def test_parse_query(self):
        query = parse_query("q(x, y) :- P(x, z), Q(z, y)")
        assert query.name == "q"
        assert [v.name for v in query.head] == ["x", "y"]
        assert len(query.atoms) == 2

    def test_boolean_query(self):
        query = parse_query("q() :- P(x)")
        assert query.head == ()

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((Variable("y"),), (atom("P", Variable("x")),))

    def test_malformed_query_rejected(self):
        with pytest.raises(ParseError):
            parse_query("just some text")
        with pytest.raises(ParseError):
            parse_query("q(x) :- P(x) garbage(")


class TestEvaluation:
    def test_join_evaluation(self):
        instance = Instance.build({"P": [("a", "b")], "Q": [("b", "c")]})
        query = parse_query("q(x, y) :- P(x, z), Q(z, y)")
        assert evaluate(query, instance) == {(Constant("a"), Constant("c"))}

    def test_naive_evaluation_includes_nulls(self):
        instance = Instance.of([atom("P", "a", Null("n"))])
        query = parse_query("q(x, y) :- P(x, y)")
        assert (Constant("a"), Null("n")) in evaluate(query, instance)

    def test_boolean_query_yields_empty_tuple(self):
        instance = Instance.build({"P": [("a",)]})
        query = parse_query("q() :- P(x)")
        assert evaluate(query, instance) == {()}

    def test_unsatisfied_query_is_empty(self):
        query = parse_query("q(x) :- P(x, x)")
        assert evaluate(query, Instance.build({"P": [("a", "b")]})) == frozenset()


class TestCertainAnswers:
    def test_null_tuples_excluded(self):
        mapping = projection()
        source = Instance.build({"P": [("a", "b")]})
        first = parse_query("q(x) :- Q(x)")
        assert certain_answers(first, mapping, source) == {(Constant("a"),)}

    def test_join_certain_answers_survive_decomposition(self):
        mapping = decomposition()
        source = Instance.build({"P": [("a", "b", "c")]})
        query = parse_query("q(x, z) :- Q(x, y), R(y, z)")
        assert certain_answers(query, mapping, source) == {
            (Constant("a"), Constant("c"))
        }

    def test_certain_answers_respect_equivalence(self):
        # ∼M-equivalent sources have identical certain answers.
        from repro.catalog import example_3_10_witnesses

        mapping = decomposition()
        left, right = example_3_10_witnesses()
        query = parse_query("q(x, z) :- Q(x, y), R(y, z)")
        assert certain_answers(query, mapping, left) == certain_answers(
            query, mapping, right
        )
