"""Unit tests for soundness, faithfulness, and recovery (Section 6)."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    decomposition_quasi_inverse_split,
    figure_1_instance,
    projection,
    projection_quasi_inverse,
    union_mapping,
    union_quasi_inverse,
)
from repro.core.mapping import SchemaMapping, data_exchange_equivalent
from repro.datamodel.instances import Instance
from repro.dataexchange.recovery import (
    analyze_round_trip,
    faithful_on,
    is_faithful,
    is_sound,
    recover,
    sound_on,
)


class TestSoundness:
    def test_paper_quasi_inverses_are_sound(self):
        source = figure_1_instance()
        for reverse in (
            decomposition_quasi_inverse_join(),
            decomposition_quasi_inverse_split(),
        ):
            assert is_sound(decomposition(), reverse, source)

    def test_fact_inventing_reverse_is_unsound(self):
        # Recovering P facts with a constant in the wrong position
        # makes the re-exchange invent target facts outside U.
        bad = SchemaMapping.from_text(
            decomposition().target,
            decomposition().source,
            "Q(x, y) -> P(y, x, z)",
        )
        assert not is_sound(decomposition(), bad, figure_1_instance())

    def test_sound_on_reports_violators(self):
        bad = SchemaMapping.from_text(
            decomposition().target,
            decomposition().source,
            "Q(x, y) -> P(y, x, z)",
        )
        ok, violators = sound_on(decomposition(), bad, [figure_1_instance()])
        assert not ok and violators == (figure_1_instance(),)


class TestFaithfulness:
    def test_figure_1_reverses_are_faithful(self):
        source = figure_1_instance()
        for reverse in (
            decomposition_quasi_inverse_join(),
            decomposition_quasi_inverse_split(),
        ):
            report = analyze_round_trip(decomposition(), reverse, source)
            assert report.faithful and report.sound
            assert report.faithful_index is not None

    def test_partial_reverse_is_sound_but_not_faithful(self):
        partial = SchemaMapping.from_text(
            decomposition().target,
            decomposition().source,
            "Q(x, y) -> P(x, y, z)",
        )
        source = Instance.build({"P": [("a", "b", "c")]})
        assert is_sound(decomposition(), partial, source)
        assert not is_faithful(decomposition(), partial, source)

    def test_faithful_on_aggregates(self):
        sources = [
            Instance.build({"P": [("a", "b", "c")]}),
            figure_1_instance(),
        ]
        ok, violators = faithful_on(
            decomposition(), decomposition_quasi_inverse_join(), sources
        )
        assert ok and not violators

    def test_projection_quasi_inverse_faithful(self):
        source = Instance.build({"P": [("a", "b"), ("c", "d")]})
        assert is_faithful(projection(), projection_quasi_inverse(), source)


class TestRecover:
    def test_recovers_an_equivalent_ground_instance(self):
        source = figure_1_instance()
        recovered = recover(
            decomposition(), decomposition_quasi_inverse_join(), source
        )
        assert recovered is not None
        assert recovered.is_ground()
        assert data_exchange_equivalent(decomposition(), source, recovered)

    def test_recovered_instance_may_carry_nulls(self):
        source = figure_1_instance()
        recovered = recover(
            decomposition(), decomposition_quasi_inverse_split(), source
        )
        assert recovered is not None
        assert recovered.nulls()

    def test_recover_returns_none_when_unfaithful(self):
        partial = SchemaMapping.from_text(
            decomposition().target,
            decomposition().source,
            "Q(x, y) -> P(x, y, z)",
        )
        source = Instance.build({"P": [("a", "b", "c")]})
        assert recover(decomposition(), partial, source) is None

    def test_recover_picks_a_branch_for_disjunctive_reverses(self):
        source = Instance.build({"P": [("a",)], "Q": [("b",)]})
        recovered = recover(union_mapping(), union_quasi_inverse(), source)
        assert recovered is not None
        assert data_exchange_equivalent(union_mapping(), source, recovered)
