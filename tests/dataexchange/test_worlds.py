"""Unit tests for possible-worlds query answering."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    union_mapping,
    union_quasi_inverse,
)
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant
from repro.dataexchange.queries import parse_query
from repro.dataexchange.worlds import (
    certain_answers_over_worlds,
    possible_answers_over_worlds,
    recovered_certain_answers,
    recovered_possible_answers,
)


class TestWorldSemantics:
    def test_certain_is_intersection(self):
        worlds = [
            Instance.build({"P": [("a",), ("b",)]}),
            Instance.build({"P": [("a",), ("c",)]}),
        ]
        query = parse_query("q(x) :- P(x)")
        assert certain_answers_over_worlds(query, worlds) == {(Constant("a"),)}

    def test_possible_is_union(self):
        worlds = [
            Instance.build({"P": [("a",)]}),
            Instance.build({"P": [("b",)]}),
        ]
        query = parse_query("q(x) :- P(x)")
        assert possible_answers_over_worlds(query, worlds) == {
            (Constant("a"),),
            (Constant("b"),),
        }

    def test_empty_world_set_is_uncertain(self):
        query = parse_query("q(x) :- P(x)")
        assert certain_answers_over_worlds(query, []) == frozenset()
        assert possible_answers_over_worlds(query, []) == frozenset()

    def test_null_answers_discarded(self):
        from repro.datamodel.atoms import atom
        from repro.datamodel.terms import Null

        worlds = [Instance.of([atom("P", Null("n"))])]
        query = parse_query("q(x) :- P(x)")
        assert certain_answers_over_worlds(query, worlds) == frozenset()


class TestRoundTripAnswers:
    def test_union_source_membership_is_uncertain(self):
        # After exporting {Crm-style} union data, which feed a value
        # came from is possible but not certain.
        source = Instance.build({"P": [("a",)], "Q": [("b",)]})
        p_query = parse_query("q(x) :- P(x)")
        certain = recovered_certain_answers(
            union_mapping(), union_quasi_inverse(), source, p_query
        )
        possible = recovered_possible_answers(
            union_mapping(), union_quasi_inverse(), source, p_query
        )
        assert certain == frozenset()
        assert possible == {(Constant("a"),), (Constant("b"),)}

    def test_join_recovery_certainly_answers_join_queries(self):
        source = Instance.build({"P": [("a", "b", "c")]})
        query = parse_query("q(x, z) :- P(x, y, z)")
        certain = recovered_certain_answers(
            decomposition(), decomposition_quasi_inverse_join(), source, query
        )
        assert certain == {(Constant("a"), Constant("c"))}

    def test_certain_subset_of_possible(self):
        source = Instance.build({"P": [("a",), ("b",)], "Q": [("b",)]})
        query = parse_query("q(x) :- Q(x)")
        certain = recovered_certain_answers(
            union_mapping(), union_quasi_inverse(), source, query
        )
        possible = recovered_possible_answers(
            union_mapping(), union_quasi_inverse(), source, query
        )
        assert certain <= possible
