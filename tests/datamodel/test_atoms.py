"""Unit tests for atoms and facts."""

import pytest

from repro.datamodel.atoms import Atom, atom, atoms_variables
from repro.datamodel.terms import Constant, Null, Variable


class TestConstruction:
    def test_atom_helper_coerces_raw_values(self):
        built = atom("P", "a", 3)
        assert built.args == (Constant("a"), Constant(3))

    def test_atom_helper_passes_terms_through(self):
        built = atom("P", Variable("x"), Null("n"))
        assert built.args == (Variable("x"), Null("n"))

    def test_atom_helper_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            atom("P", 1.5)

    def test_arity(self):
        assert atom("P", "a", "b").arity == 2
        assert Atom("Q", ()).arity == 0


class TestClassification:
    def test_is_fact_excludes_variables(self):
        assert atom("P", "a", Null("n")).is_fact()
        assert not atom("P", Variable("x")).is_fact()

    def test_is_ground_excludes_nulls(self):
        assert atom("P", "a").is_ground()
        assert not atom("P", Null("n")).is_ground()

    def test_term_iterators(self):
        built = atom("P", "a", Variable("x"), Null("n"))
        assert list(built.constants()) == [Constant("a")]
        assert list(built.variables()) == [Variable("x")]
        assert list(built.nulls()) == [Null("n")]


class TestSubstitution:
    def test_substitute_is_identity_where_absent(self):
        built = atom("P", Variable("x"), Variable("y"))
        image = built.substitute({Variable("x"): Constant("a")})
        assert image == atom("P", "a", Variable("y"))

    def test_substitute_does_not_mutate(self):
        built = atom("P", Variable("x"))
        built.substitute({Variable("x"): Constant("a")})
        assert built == atom("P", Variable("x"))


class TestOrderingAndRendering:
    def test_atoms_sort_by_relation_then_args(self):
        assert atom("P", "a") < atom("Q", "a")
        assert atom("P", "a") < atom("P", "b")

    def test_rendering(self):
        assert str(atom("P", "a", Variable("x"))) == "P(a, x)"

    def test_atoms_variables_order_of_first_occurrence(self):
        first = atom("P", Variable("y"), Variable("x"))
        second = atom("Q", Variable("x"), Variable("z"))
        assert atoms_variables([first, second]) == (
            Variable("y"),
            Variable("x"),
            Variable("z"),
        )
