"""Unit tests for instances."""

import pytest

from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance, rename_apart
from repro.datamodel.schemas import Schema, SchemaError
from repro.datamodel.terms import Constant, Null, Variable


class TestConstruction:
    def test_build_coerces_rows(self):
        instance = Instance.build({"P": [("a", "b"), ("a", "c")]})
        assert len(instance) == 2
        assert atom("P", "a", "b") in instance

    def test_empty_is_falsy_and_shared(self):
        assert not Instance.empty()
        assert Instance.empty() == Instance.of([])

    def test_duplicate_facts_collapse(self):
        instance = Instance.of([atom("P", "a"), atom("P", "a")])
        assert len(instance) == 1

    def test_equality_is_by_fact_set(self):
        left = Instance.build({"P": [("a",), ("b",)]})
        right = Instance.of([atom("P", "b"), atom("P", "a")])
        assert left == right
        assert hash(left) == hash(right)


class TestQueries:
    def test_facts_for_is_sorted(self):
        instance = Instance.build({"P": [("b",), ("a",)]})
        assert instance.facts_for("P") == (atom("P", "a"), atom("P", "b"))

    def test_facts_for_missing_relation_is_empty(self):
        assert Instance.empty().facts_for("P") == ()

    def test_active_domain_and_kind_views(self):
        instance = Instance.of([atom("P", "a", Null("n"), Variable("x"))])
        assert instance.constants() == {Constant("a")}
        assert instance.nulls() == {Null("n")}
        assert instance.variables() == {Variable("x")}

    def test_is_ground(self):
        assert Instance.build({"P": [("a",)]}).is_ground()
        assert not Instance.of([atom("P", Null("n"))]).is_ground()

    def test_iteration_is_sorted(self):
        instance = Instance.build({"Q": [("b",)], "P": [("a",)]})
        assert list(instance) == [atom("P", "a"), atom("Q", "b")]


class TestSetOperations:
    def test_union_difference_subset(self):
        left = Instance.build({"P": [("a",)]})
        right = Instance.build({"P": [("b",)]})
        both = left.union(right)
        assert left.issubset(both) and right.issubset(both)
        assert both.difference(left) == right

    def test_union_accepts_raw_atoms(self):
        grown = Instance.empty().union([atom("P", "a")])
        assert len(grown) == 1

    def test_restrict_to_schema(self):
        instance = Instance.build({"P": [("a",)], "Q": [("b",)]})
        restricted = instance.restrict_to(Schema.of({"P": 1}))
        assert restricted == Instance.build({"P": [("a",)]})

    def test_substitute_maps_terms(self):
        instance = Instance.of([atom("P", Null("n"), "a")])
        image = instance.substitute({Null("n"): Constant("c")})
        assert image == Instance.build({"P": [("c", "a")]})


class TestValidation:
    def test_validate_accepts_conforming(self):
        Instance.build({"P": [("a",)]}).validate(Schema.of({"P": 1}))

    def test_validate_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            Instance.build({"P": [("a", "b")]}).validate(Schema.of({"P": 1}))


class TestRenameApart:
    def test_colliding_nulls_are_renamed(self):
        instance = Instance.of([atom("P", Null("n0"))])
        renamed, mapping = rename_apart(instance, [Null("n0")])
        assert Null("n0") not in renamed.nulls()
        assert mapping

    def test_disjoint_nulls_untouched(self):
        instance = Instance.of([atom("P", Null("n0"))])
        renamed, mapping = rename_apart(instance, [Null("other")])
        assert renamed == instance
        assert mapping == {}


class TestRendering:
    def test_to_rows(self):
        instance = Instance.build({"P": [("a", "b")]})
        assert instance.to_rows() == {"P": [("a", "b")]}

    def test_pretty_of_empty(self):
        assert Instance.empty().pretty() == "(empty)"
