"""Unit tests for schemas."""

import pytest

from repro.datamodel.atoms import atom
from repro.datamodel.schemas import Schema, SchemaError


class TestConstruction:
    def test_of_mapping(self):
        schema = Schema.of({"P": 2, "Q": 1})
        assert schema.arity("P") == 2
        assert schema.arity("Q") == 1

    def test_of_pairs(self):
        schema = Schema.of([("P", 2)])
        assert "P" in schema

    def test_relations_are_sorted_canonically(self):
        assert Schema.of({"B": 1, "A": 1}) == Schema.of({"A": 1, "B": 1})

    def test_duplicate_with_conflicting_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema((("P", 1), ("P", 2)))

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of({"P": -1})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of({"": 1})


class TestQueries:
    def test_unknown_relation_raises(self):
        with pytest.raises(SchemaError):
            Schema.of({"P": 1}).arity("Q")

    def test_iteration_and_len(self):
        schema = Schema.of({"B": 1, "A": 2})
        assert list(schema) == ["A", "B"]
        assert len(schema) == 2

    def test_validate_atom(self):
        schema = Schema.of({"P": 2})
        schema.validate_atom(atom("P", "a", "b"))
        with pytest.raises(SchemaError):
            schema.validate_atom(atom("P", "a"))
        with pytest.raises(SchemaError):
            schema.validate_atom(atom("Q", "a"))


class TestSurgery:
    def test_augment_adds_fresh_relation(self):
        schema = Schema.of({"P": 1}).augment("R", 3)
        assert schema.arity("R") == 3
        assert schema.arity("P") == 1

    def test_augment_rejects_existing(self):
        with pytest.raises(SchemaError):
            Schema.of({"P": 1}).augment("P", 1)

    def test_union_merges(self):
        merged = Schema.of({"P": 1}).union(Schema.of({"Q": 2}))
        assert set(merged.names()) == {"P", "Q"}

    def test_union_rejects_arity_conflicts(self):
        with pytest.raises(SchemaError):
            Schema.of({"P": 1}).union(Schema.of({"P": 2}))

    def test_disjointness(self):
        assert Schema.of({"P": 1}).is_disjoint_from(Schema.of({"Q": 1}))
        assert not Schema.of({"P": 1}).is_disjoint_from(Schema.of({"P": 1}))
