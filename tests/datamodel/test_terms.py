"""Unit tests for terms: the three disjoint kinds and their order."""

import pytest

from repro.datamodel.terms import (
    Constant,
    Null,
    Variable,
    constants,
    is_constant,
    nulls,
    variables,
)


class TestKinds:
    def test_constant_equality_is_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_int_and_str_constants_are_distinct(self):
        assert Constant(1) != Constant("1")

    def test_null_equality_is_by_label(self):
        assert Null("n1") == Null("n1")
        assert Null("n1") != Null("n2")

    def test_kinds_are_disjoint(self):
        assert Constant("x") != Variable("x")
        assert Constant("x") != Null("x")
        assert Null("x") != Variable("x")

    def test_terms_are_hashable(self):
        pool = {Constant("a"), Null("a"), Variable("a")}
        assert len(pool) == 3

    def test_is_constant(self):
        assert is_constant(Constant("a"))
        assert not is_constant(Null("a"))
        assert not is_constant(Variable("a"))


class TestOrdering:
    def test_constants_sort_before_nulls_before_variables(self):
        ordered = sorted([Variable("a"), Null("a"), Constant("a")])
        assert [type(t) for t in ordered] == [Constant, Null, Variable]

    def test_integer_constants_sort_numerically(self):
        assert Constant(2) < Constant(10)

    def test_integers_sort_before_strings(self):
        assert Constant(999) < Constant("a")

    def test_sort_is_deterministic_and_total(self):
        pool = [Constant("b"), Constant("a"), Null("z"), Variable("m"), Constant(3)]
        assert sorted(pool) == sorted(reversed(pool))


class TestFilters:
    def test_filters_partition_by_kind(self):
        pool = [Constant("a"), Null("n"), Variable("v"), Constant(2)]
        assert list(constants(pool)) == [Constant("a"), Constant(2)]
        assert list(nulls(pool)) == [Null("n")]
        assert list(variables(pool)) == [Variable("v")]

    def test_filters_preserve_order(self):
        pool = [Constant("b"), Constant("a")]
        assert list(constants(pool)) == pool


class TestRendering:
    def test_null_rendering_is_marked(self):
        assert str(Null("n1")) == "⊥n1"

    def test_constant_and_variable_render_plainly(self):
        assert str(Constant("a")) == "a"
        assert str(Variable("x")) == "x"
