"""Unit tests for the dependency language (Definition 2.1)."""

import pytest

from repro.datamodel.atoms import atom
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dependencies.dependency import (
    Dependency,
    DependencyError,
    LanguageFeatures,
    Premise,
    language_audit,
    tgd,
)
from repro.dependencies.parser import parse_dependency

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestPremise:
    def test_constant_var_must_occur_in_atoms(self):
        with pytest.raises(DependencyError):
            Premise((atom("P", X),), constant_vars=frozenset({Y}))

    def test_inequality_vars_must_occur_in_atoms(self):
        with pytest.raises(DependencyError):
            Premise((atom("P", X),), inequalities=frozenset({(X, Y)}))

    def test_inequality_normalized_to_sorted_pair(self):
        premise = Premise((atom("P", X, Y),), inequalities={(Y, X)})
        assert premise.inequalities == frozenset({(X, Y)})

    def test_reflexive_inequality_rejected(self):
        with pytest.raises(DependencyError):
            Premise((atom("P", X),), inequalities={(X, X)})

    def test_inequalities_among_constants_detection(self):
        both = Premise(
            (atom("P", X, Y),),
            constant_vars=frozenset({X, Y}),
            inequalities={(X, Y)},
        )
        assert both.inequalities_among_constants()
        one = Premise(
            (atom("P", X, Y),), constant_vars=frozenset({X}), inequalities={(X, Y)}
        )
        assert not one.inequalities_among_constants()


class TestStructure:
    def test_frontier_in_premise_order(self):
        dep = parse_dependency("P(y, x) & Q(x, z) -> R(z, y)")
        assert dep.frontier() == (Variable("y"), Variable("z"))

    def test_existential_variables_per_disjunct(self):
        dep = parse_dependency("P(x) -> Q(x, y) | R(x)")
        assert dep.existential_variables(0) == (Variable("y"),)
        assert dep.existential_variables(1) == ()

    def test_empty_premise_rejected(self):
        with pytest.raises(DependencyError):
            Dependency(Premise(()), ((atom("Q", X),),))

    def test_empty_disjunct_rejected(self):
        with pytest.raises(DependencyError):
            Dependency(Premise((atom("P", X),)), ((),))

    def test_no_disjuncts_rejected(self):
        with pytest.raises(DependencyError):
            Dependency(Premise((atom("P", X),)), ())


class TestClassification:
    def test_plain_tgd(self):
        dep = parse_dependency("P(x, y) & R(y) -> Q(x)")
        assert dep.is_tgd() and dep.is_full() and not dep.is_lav()

    def test_lav(self):
        assert parse_dependency("P(x) -> Q(x, y)").is_lav()
        assert not parse_dependency("P(x) & R(x) -> Q(x)").is_lav()

    def test_full_requires_no_existentials_anywhere(self):
        assert parse_dependency("P(x) -> Q(x) | R(x)").is_full()
        assert not parse_dependency("P(x) -> Q(x) | R(x, y)").is_full()

    def test_constraints_disqualify_tgd(self):
        dep = parse_dependency("P(x, y) & x != y -> Q(x)")
        assert not dep.is_tgd()

    def test_language_features(self):
        dep = parse_dependency(
            "P(x, y) & Constant(x) & x != y -> Q(x, z) | R(x)"
        )
        assert dep.language_features() == LanguageFeatures(True, True, True, True)

    def test_language_audit_is_union(self):
        deps = [
            parse_dependency("P(x, y) -> Q(x)"),
            parse_dependency("P(x, y) & x != y -> Q(x)"),
        ]
        assert language_audit(deps) == LanguageFeatures(inequalities=True)

    def test_features_describe(self):
        assert LanguageFeatures().describe() == "plain full tgds"
        assert LanguageFeatures(constants=True).describe() == "constants"


class TestValidation:
    def test_validate_against_schemas(self):
        dep = parse_dependency("P(x, y) -> Q(x)")
        dep.validate(Schema.of({"P": 2}), Schema.of({"Q": 1}))
        with pytest.raises(DependencyError):
            dep.validate(Schema.of({"P": 1}), Schema.of({"Q": 1}))
        with pytest.raises(DependencyError):
            dep.validate(Schema.of({"P": 2}), Schema.of({"R": 1}))


class TestTransformation:
    def test_substitute_renames_everywhere(self):
        dep = parse_dependency("P(x, y) & x != y -> Q(x, z)")
        renamed = dep.substitute({X: Variable("a")})
        assert renamed == parse_dependency("P(a, y) & a != y -> Q(a, z)")

    def test_substitute_collapsing_inequality_rejected(self):
        dep = parse_dependency("P(x, y) & x != y -> Q(x)")
        with pytest.raises(DependencyError):
            dep.substitute({X: Y})

    def test_canonical_form_is_renaming_invariant(self):
        left = parse_dependency("P(x, y) -> Q(x, z)")
        right = parse_dependency("P(a, b) -> Q(a, w)")
        assert left.canonical_form() == right.canonical_form()

    def test_canonical_form_is_conjunct_order_invariant(self):
        left = parse_dependency("P(x) & R(x) -> Q(x)")
        right = parse_dependency("R(x) & P(x) -> Q(x)")
        assert left.canonical_form() == right.canonical_form()

    def test_canonical_form_distinguishes_distinct_dependencies(self):
        left = parse_dependency("P(x, y) -> Q(x)")
        right = parse_dependency("P(x, x) -> Q(x)")
        assert left.canonical_form() != right.canonical_form()

    def test_tgd_helper(self):
        dep = tgd([atom("P", X, Y)], [atom("Q", X)])
        assert dep.is_tgd()
