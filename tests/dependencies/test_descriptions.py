"""Unit tests for complete descriptions and Sigma* (Section 4)."""

import pytest

from repro.datamodel.terms import Variable
from repro.dependencies.descriptions import (
    complete_descriptions,
    quotient,
    set_partitions,
    sigma_star,
)
from repro.dependencies.parser import parse_dependency

BELL = {0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52}


class TestSetPartitions:
    @pytest.mark.parametrize("n,expected", sorted(BELL.items()))
    def test_counts_are_bell_numbers(self, n, expected):
        assert sum(1 for _ in set_partitions(range(n))) == expected

    def test_partitions_are_distinct(self):
        partitions = [
            frozenset(frozenset(block) for block in p)
            for p in set_partitions(range(4))
        ]
        assert len(partitions) == len(set(partitions))

    def test_every_partition_covers_all_items(self):
        for partition in set_partitions(["a", "b", "c"]):
            assert sorted(x for block in partition for x in block) == ["a", "b", "c"]

    def test_deterministic_order(self):
        assert list(set_partitions(range(3))) == list(set_partitions(range(3)))


class TestCompleteDescriptions:
    def test_identity_description_present(self):
        xs = [Variable("x1"), Variable("x2")]
        descriptions = list(complete_descriptions(xs))
        assert {v: v for v in xs} in descriptions

    def test_representatives_are_first_in_input_order(self):
        x1, x2 = Variable("x1"), Variable("x2")
        merged = [d for d in complete_descriptions([x1, x2]) if d[x2] == x1]
        assert merged == [{x1: x1, x2: x1}]


class TestSigmaStar:
    def test_paper_example(self):
        # Example 4.5: sigma_2 = f(sigma_1, x1 = x2).
        sigma1 = parse_dependency("P(x1, x2, x3) -> S(x1, x2, y) & Q(y, y)")
        star = sigma_star([sigma1])
        expected = parse_dependency("P(x1, x1, x3) -> S(x1, x1, y) & Q(y, y)")
        keys = {d.canonical_form() for d in star}
        assert sigma1.canonical_form() in keys
        assert expected.canonical_form() in keys
        assert len(star) == 2  # frontier is (x1, x2): two descriptions

    def test_single_frontier_variable_adds_nothing(self):
        sigma = parse_dependency("P(x, u) -> Q(x)")
        assert len(sigma_star([sigma])) == 1

    def test_quotients_by_frontier_not_all_variables(self):
        # u is premise-only: it is not quotiented.
        sigma = parse_dependency("P(x, y, u) -> Q(x, y)")
        star = sigma_star([sigma])
        assert len(star) == 2

    def test_deduplication_across_members(self):
        left = parse_dependency("P(x, y) -> Q(x, y)")
        right = parse_dependency("P(a, b) -> Q(a, b)")  # same up to renaming
        assert len(sigma_star([left, right])) == len(sigma_star([left]))

    def test_quotient_applies_description(self):
        sigma = parse_dependency("P(x, y) -> Q(x, y)")
        x, y = Variable("x"), Variable("y")
        merged = quotient(sigma, {x: x, y: x})
        assert merged == parse_dependency("P(x, x) -> Q(x, x)")

    def test_originals_come_first(self):
        sigma = parse_dependency("P(x, y) -> Q(x, y)")
        star = sigma_star([sigma])
        assert star[0] == sigma
