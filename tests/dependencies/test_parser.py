"""Unit tests for the dependency text parser."""

import pytest

from repro.datamodel.atoms import atom
from repro.datamodel.terms import Constant, Variable
from repro.dependencies.parser import ParseError, parse_dependencies, parse_dependency


class TestBasics:
    def test_simple_tgd(self):
        dep = parse_dependency("P(x, y) -> Q(x)")
        assert dep.premise.atoms == (atom("P", Variable("x"), Variable("y")),)
        assert dep.disjuncts == ((atom("Q", Variable("x")),),)

    def test_conjunctions_on_both_sides(self):
        dep = parse_dependency("P(x) & R(x) -> Q(x) & S(x)")
        assert len(dep.premise.atoms) == 2
        assert len(dep.disjuncts[0]) == 2

    def test_comma_as_conjunction(self):
        dep = parse_dependency("P(x), R(x) -> Q(x), S(x)")
        assert len(dep.premise.atoms) == 2
        assert len(dep.disjuncts[0]) == 2

    def test_disjunction(self):
        dep = parse_dependency("S(x) -> P(x) | Q(x)")
        assert len(dep.disjuncts) == 2

    def test_unicode_connectives(self):
        dep = parse_dependency("P(x) ∧ R(x) → Q(x) ∨ S(x)")
        assert len(dep.premise.atoms) == 2
        assert len(dep.disjuncts) == 2


class TestConstraints:
    def test_constant_conjunct(self):
        dep = parse_dependency("P(x, y) & Constant(x) -> Q(x)")
        assert dep.premise.constant_vars == frozenset({Variable("x")})

    def test_inequality(self):
        dep = parse_dependency("P(x, y) & x != y -> Q(x)")
        assert dep.premise.inequalities == frozenset(
            {(Variable("x"), Variable("y"))}
        )

    def test_unicode_inequality(self):
        dep = parse_dependency("P(x, y) & x ≠ y -> Q(x)")
        assert dep.premise.inequalities

    def test_reflexive_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("P(x, y) & x != x -> Q(x)")


class TestTermsAndExistentials:
    def test_constants_in_atoms(self):
        dep = parse_dependency("P(x, 'a', 3) -> Q(x)")
        assert dep.premise.atoms[0].args[1] == Constant("a")
        assert dep.premise.atoms[0].args[2] == Constant(3)

    def test_implicit_existentials(self):
        dep = parse_dependency("P(x) -> Q(x, y)")
        assert dep.existential_variables(0) == (Variable("y"),)

    def test_declared_existentials_validated(self):
        dep = parse_dependency("P(x) -> exists y . Q(x, y)")
        assert dep.existential_variables(0) == (Variable("y"),)
        with pytest.raises(ParseError):
            parse_dependency("P(x) -> exists z . Q(x, y)")

    def test_multiple_declared_existentials(self):
        dep = parse_dependency("P(x) -> exists y, z . Q(x, y) & R(y, z)")
        assert set(dep.existential_variables(0)) == {Variable("y"), Variable("z")}


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "P(x)",
            "P(x) ->",
            "-> Q(x)",
            "P(x) -> Q(x) extra",
            "P(x -> Q(x)",
            "P(x) -> Q(x) |",
            "P(x) % Q(x)",
            "Constant(x) -> Q(x)",
        ],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(ParseError):
            parse_dependency(bad)

    def test_constraints_not_allowed_in_conclusion(self):
        with pytest.raises(ParseError):
            parse_dependency("P(x, y) -> x != y")


class TestMultiple:
    def test_newline_and_semicolon_separated(self):
        deps = parse_dependencies("P(x) -> Q(x)\nR(x) -> Q(x); S(x) -> Q(x)")
        assert len(deps) == 3

    def test_comments_and_blank_lines_ignored(self):
        deps = parse_dependencies(
            """
            # the projection
            P(x, y) -> Q(x)

            """
        )
        assert len(deps) == 1


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "P(x, y) -> Q(x)",
            "Q(x, y) & R(y, z) -> P(x, y, z)",
            "S(x) -> P(x) | Q(x)",
            "P(x, y, z) & Constant(x) & x != y -> Q(x, w) | Q(x, y)",
            "S(x1, x2, y) & Constant(x1) & Constant(x2) & x1 != x2 -> P(x1, x2, x3)",
        ],
    )
    def test_render_then_parse_is_identity(self, text):
        from repro.dependencies.rendering import render_dependency

        dep = parse_dependency(text)
        for unicode in (True, False):
            rendered = render_dependency(dep, unicode=unicode)
            assert parse_dependency(rendered) == dep
