"""Unit tests for dependency rendering."""

from repro.dependencies.parser import parse_dependencies, parse_dependency
from repro.dependencies.rendering import render_dependencies, render_dependency


class TestUnicode:
    def test_connectives(self):
        dep = parse_dependency("P(x) & R(x) -> Q(x) | S(x)")
        rendered = render_dependency(dep)
        assert "∧" in rendered and "→" in rendered and "∨" in rendered

    def test_existential_prefix(self):
        dep = parse_dependency("P(x) -> Q(x, y)")
        assert render_dependency(dep) == "P(x) → ∃y Q(x, y)"

    def test_multi_atom_existential_group_is_parenthesized(self):
        dep = parse_dependency("P(x) -> Q(x, y) & R(y)")
        rendered = render_dependency(dep)
        assert "(" in rendered and rendered.endswith(")")

    def test_constraints_rendered(self):
        dep = parse_dependency("P(x, y) & Constant(x) & x != y -> Q(x)")
        rendered = render_dependency(dep)
        assert "Constant(x)" in rendered and "x ≠ y" in rendered


class TestAscii:
    def test_pure_ascii(self):
        dep = parse_dependency(
            "P(x, y) & Constant(x) & x != y -> Q(x, z) | S(x)"
        )
        rendered = render_dependency(dep, unicode=False)
        assert rendered.isascii()
        assert "exists z ." in rendered
        assert "!=" in rendered and "->" in rendered and "|" in rendered


class TestMultiple:
    def test_render_dependencies_one_per_line(self):
        deps = parse_dependencies("P(x) -> Q(x)\nR(x) -> Q(x)")
        rendered = render_dependencies(deps)
        assert len(rendered.splitlines()) == 2
        assert all(line.startswith("  ") for line in rendered.splitlines())

    def test_custom_indent(self):
        deps = parse_dependencies("P(x) -> Q(x)")
        assert render_dependencies(deps, indent="").startswith("P(x)")


class TestStability:
    def test_str_uses_renderer(self):
        dep = parse_dependency("P(x) -> Q(x)")
        assert str(dep) == render_dependency(dep)

    def test_rendering_is_deterministic(self):
        dep = parse_dependency("P(x, y) & Constant(y) & Constant(x) -> Q(x)")
        assert render_dependency(dep) == render_dependency(dep)
        # Constant conjuncts appear in sorted variable order.
        rendered = render_dependency(dep)
        assert rendered.index("Constant(x)") < rendered.index("Constant(y)")
