"""Unit tests for the engine's content-addressed memo caches."""

from repro.catalog import decomposition
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null, Variable
from repro.engine import (
    MemoCache,
    cached_chase_result,
    canonical_key,
    canonicalize_instance,
    chase_cache,
    mapping_key,
    reset_all_caches,
)
from repro.engine.cache import resize_caches


class TestMemoCache:
    def test_miss_then_hit(self):
        cache = MemoCache("t-basic", maxsize=4)
        hit, value = cache.get("k")
        assert (hit, value) == (False, None)
        cache.put("k", 42)
        hit, value = cache.get("k")
        assert (hit, value) == (True, 42)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_memoize_computes_once(self):
        cache = MemoCache("t-memoize", maxsize=4)
        calls = []
        compute = lambda: calls.append(1) or "v"  # noqa: E731
        assert cache.memoize("k", compute) == "v"
        assert cache.memoize("k", compute) == "v"
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = MemoCache("t-lru", maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" becomes least recently used
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.stats().evictions == 1

    def test_resize_shrinks_and_evicts(self):
        cache = MemoCache("t-resize", maxsize=8)
        for i in range(8):
            cache.put(i, i)
        resize_caches(2)
        try:
            assert cache.maxsize == 2
            assert cache.stats().size == 2
            assert cache.get(7) == (True, 7)  # newest entries survive
        finally:
            resize_caches(None)

    def test_resize_none_restores_construction_defaults(self):
        cache = MemoCache("t-resize-none", maxsize=8)
        resize_caches(3)
        try:
            assert cache.maxsize == 3
        finally:
            resize_caches(None)
        assert cache.maxsize == 8

    def test_configured_size_applies_to_later_caches(self):
        # The --cache-size knob must bind caches constructed *after*
        # resize_caches ran (the CLI parses flags before most caches
        # are touched, but kernel memos and test caches come later).
        resize_caches(5)
        try:
            late = MemoCache("t-late", maxsize=1000)
            assert late.maxsize == 5
            for i in range(10):
                late.put(i, i)
            assert late.stats().size == 5
        finally:
            resize_caches(None)
        assert late.maxsize == 1000

    def test_resize_pushes_symmetry_memo_limit(self):
        import repro.engine.symmetry as symmetry

        resize_caches(7)
        try:
            assert symmetry._FORM_MEMO_MAX == 7
            assert symmetry._PAIR_MEMO_MAX == 7
        finally:
            resize_caches(None)
        assert symmetry._FORM_MEMO_MAX == symmetry._FORM_MEMO_DEFAULT
        assert symmetry._PAIR_MEMO_MAX == symmetry._PAIR_MEMO_DEFAULT


class TestCanonicalization:
    def test_ground_instances_are_their_own_canonical_form(self):
        instance = Instance.build({"P": [("a", "b"), ("b", "c")]})
        canonical, forward = canonicalize_instance(instance)
        assert canonical == instance
        assert forward == {}

    def test_isomorphic_instances_share_a_key(self):
        left = Instance.build({"P": [("a", Null("n1")), (Null("n1"), Null("n2"))]})
        right = Instance.build({"P": [("a", Null("x")), (Null("x"), Null("y"))]})
        assert left != right
        assert canonical_key(left) == canonical_key(right)

    def test_variables_and_nulls_do_not_collide(self):
        with_null = Instance.build({"P": [("a", Null("n"))]})
        with_var = Instance.build({"P": [("a", Variable("n"))]})
        assert canonical_key(with_null) != canonical_key(with_var)

    def test_distinct_structures_get_distinct_keys(self):
        chain = Instance.build({"P": [("a", Null("n1")), (Null("n1"), "b")]})
        fork = Instance.build({"P": [("a", Null("n1")), (Null("n2"), "b")]})
        assert canonical_key(chain) != canonical_key(fork)

    def test_canonical_renaming_is_a_bijection(self):
        instance = Instance.build(
            {"P": [(Null("u"), Null("v"))], "Q": [(Null("v"), Null("w"))]}
        )
        canonical, forward = canonicalize_instance(instance)
        assert len(set(forward.values())) == len(forward) == 3
        assert canonical.substitute(
            {image: original for original, image in forward.items()}
        ) == instance


class TestCachedChaseResult:
    def setup_method(self):
        reset_all_caches()

    def test_isomorphic_inputs_compute_once(self):
        mapping = decomposition()
        calls = []

        def compute(instance):
            calls.append(instance)
            # echo the input plus one chase-fresh null, like a real chase
            return instance.union(
                Instance.build({"P": [(Null("fresh"), "d", "e")]})
            )

        first = Instance.build({"P": [(Null("a"), "s", "t")]})
        second = Instance.build({"P": [(Null("b"), "s", "t")]})
        result_first = cached_chase_result(mapping, first, compute)
        result_second = cached_chase_result(mapping, second, compute)
        assert len(calls) == 1
        # each result is phrased in its caller's terms
        assert Null("a") in result_first.active_domain()
        assert Null("b") in result_second.active_domain()
        assert canonical_key(result_first) == canonical_key(result_second)

    def test_fresh_nulls_are_renamed_apart_from_the_input(self):
        mapping = decomposition()

        def compute(instance):
            return instance.union(Instance.build({"P": [(Null("fresh"), "x", "y")]}))

        seed = Instance.build({"P": [(Null("a"), "s", "t")]})
        cached_chase_result(mapping, seed, compute)  # populate
        clashing = Instance.build({"P": [(Null("fresh"), "s", "t")]})
        result = cached_chase_result(mapping, clashing, compute)
        # the caller's own "fresh" null survives; the chase-invented one
        # is renamed so the two stay distinct
        assert Null("fresh") in result.active_domain()
        assert len(result.nulls()) == 2

    def test_fresh_nulls_dodge_caller_null_and_variable_names(self):
        # The cached chase invented Null("fresh"); the caller's
        # instance uses BOTH the null name "fresh" and the variable
        # name "N0" (the first name _translate_back would otherwise
        # reach for).  The renaming must skip both.
        mapping = decomposition()

        def compute(instance):
            return instance.union(
                Instance.build({"P": [(Null("fresh"), "x", "y")]})
            )

        seed = Instance.build({"P": [(Null("a"), "s", Variable("v"))]})
        direct = cached_chase_result(mapping, seed, compute)  # populate
        clashing = Instance.build(
            {"P": [(Null("fresh"), "s", Variable("N0"))]}
        )
        result = cached_chase_result(mapping, clashing, compute)
        domain = result.active_domain()
        # the caller's own terms survive untouched
        assert Null("fresh") in domain
        assert Variable("N0") in domain
        # the chase-invented null was renamed past BOTH taken names
        assert Null("N1") in domain
        assert Null("N0") not in domain
        assert len(result.nulls()) == 2
        # and the translation is isomorphic to the seeded computation
        # (a genuine chase on `clashing` would also invent a null
        # distinct from the caller's "fresh" — which is the collision
        # the renaming exists to preserve)
        assert canonical_key(result) == canonical_key(direct)

    def test_distinct_mappings_do_not_share_entries(self):
        from repro.catalog import projection

        seed = Instance.build({"P": [(Null("a"), "s", "t")]})
        key_one = (mapping_key(decomposition()), canonical_key(seed))
        key_two = (mapping_key(projection()), canonical_key(seed))
        assert key_one != key_two

    def test_hit_counters_advance(self):
        mapping = decomposition()
        seed = Instance.build({"P": [(Null("a"), "s", "t")]})
        compute = lambda instance: instance  # noqa: E731
        before = chase_cache.stats()
        cached_chase_result(mapping, seed, compute)
        cached_chase_result(mapping, seed, compute)
        after = chase_cache.stats()
        assert after.misses == before.misses + 1
        assert after.hits == before.hits + 1
