"""The unified fault plane: spec parsing, scheduling, and scoping.

Companion to ``test_faults.py`` (which exercises what happens *after*
a fault fires — recovery, budgets, partial verdicts): these tests pin
down the plane itself — every malformed spec shape raises
:class:`~repro.errors.FaultSpecError`, deterministic schedules replay,
legacy ``REPRO_FAULT_*`` aliases keep their semantics, and injections
land on the engine counters.
"""

import pytest

from repro.engine import engine_stats, reset_engine_stats
from repro.engine.faults import (
    FAULT_POINTS,
    FaultPlane,
    FaultRule,
    active_plane,
    expire_rule,
    fault_scope,
    fire,
    parse_spec,
)
from repro.errors import FaultSpecError, ReproError


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    for name in (
        "REPRO_FAULTS",
        "REPRO_FAULT_KILL_TASK",
        "REPRO_FAULT_DELAY_TASK",
        "REPRO_FAULT_EXPIRE_AFTER",
    ):
        monkeypatch.delenv(name, raising=False)
    reset_engine_stats()
    yield
    reset_engine_stats()


class TestParseSpec:
    def test_bare_point_always_fires(self):
        rules = parse_spec("store.read")
        rule = rules["store.read"]
        assert all(rule.decide() for _ in range(5))

    def test_at_fires_exactly_once(self):
        rule = parse_spec("store.read:at=3")["store.read"]
        assert [rule.decide() for _ in range(6)] == [
            False, False, True, False, False, False,
        ]

    def test_every_fires_periodically(self):
        rule = parse_spec("journal.flush:every=2")["journal.flush"]
        assert [rule.decide() for _ in range(6)] == [
            False, True, False, True, False, True,
        ]

    def test_after_fires_past_threshold(self):
        rule = parse_spec("store.write:after=2")["store.write"]
        assert [rule.decide() for _ in range(5)] == [
            False, False, True, True, True,
        ]

    def test_times_caps_injections(self):
        rule = parse_spec("store.read:times=2")["store.read"]
        assert [rule.decide() for _ in range(5)] == [
            True, True, False, False, False,
        ]

    def test_probability_schedule_is_deterministic(self):
        first = parse_spec("store.read:p=0.5,seed=7")["store.read"]
        second = parse_spec("store.read:p=0.5,seed=7")["store.read"]
        pattern = [first.decide() for _ in range(64)]
        assert pattern == [second.decide() for _ in range(64)]
        assert any(pattern) and not all(pattern)

    def test_seeds_decorrelate_points(self):
        rules = parse_spec("store.read:p=0.5,seed=7;store.write:p=0.5,seed=7")
        read = [rules["store.read"].decide() for _ in range(64)]
        write = [rules["store.write"].decide() for _ in range(64)]
        assert read != write  # same seed, different point, different stream

    def test_task_scoping_and_wildcard(self):
        rule = parse_spec("worker.kill:task=3")["worker.kill"]
        assert not rule.decide(1)
        assert not rule.decide(None)
        assert rule.decide(3)
        wildcard = parse_spec("worker.delay:task=*,seconds=0.5")["worker.delay"]
        assert wildcard.decide(0) and wildcard.decide(9)
        assert wildcard.seconds == 0.5

    def test_clauses_split_on_semicolons_and_newlines(self):
        rules = parse_spec("store.read:at=1\njournal.flush:every=3;  ")
        assert set(rules) == {"store.read", "journal.flush"}

    def test_later_clause_overrides_earlier_same_point(self):
        rules = parse_spec("store.read:at=1;store.read:at=9")
        assert rules["store.read"].at == 9

    @pytest.mark.parametrize(
        "spec",
        [
            "no.such.point",
            "store.red:at=1",  # typo'd point
            "store.read:bogus=1",  # unknown parameter
            "store.read:at",  # missing =value
            "store.read:at=",  # empty value
            "store.read:at=x",  # non-integer
            "store.read:at=0",  # at is 1-based
            "store.read:every=0",
            "store.read:times=0",
            "store.read:after=-1",
            "store.read:p=1.5",  # probability out of range
            "store.read:p=-0.1",
            "store.read:p=half",
            "worker.delay:seconds=-1",
            "worker.delay:seconds=soon",
            "worker.kill:task=first",
            "budget.expire:resource=disk",
            "store.read:at=1,every=2",  # conflicting triggers
            "store.read:p=0.5,after=3",
        ],
    )
    def test_malformed_specs_raise_fault_spec_error(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)

    def test_fault_spec_error_is_a_repro_error_with_context(self):
        with pytest.raises(FaultSpecError) as excinfo:
            parse_spec("store.read:p=2")
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)
        assert excinfo.value.context["clause"] == "store.read:p=2"
        assert "store.read:p=2" in str(excinfo.value)

    def test_unknown_point_error_lists_known_points(self):
        with pytest.raises(FaultSpecError) as excinfo:
            parse_spec("daemon.crash")
        message = str(excinfo.value)
        assert "daemon.kill" in message and "store.read" in message


class TestEnvPlane:
    def test_env_spec_builds_the_active_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.read:at=2")
        assert fire("store.read") is None
        assert fire("store.read") is not None
        assert fire("store.read") is None

    def test_env_change_rebuilds_and_resets_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.read:at=1")
        assert fire("store.read") is not None
        monkeypatch.setenv("REPRO_FAULTS", "store.read:at=1;journal.flush")
        # rebuilt plane: occurrence counters start over
        assert fire("store.read") is not None

    def test_malformed_env_spec_raises_when_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.read:p=nope")
        with pytest.raises(FaultSpecError):
            fire("store.read")

    def test_unknown_point_at_fire_is_a_key_error(self):
        with pytest.raises(KeyError):
            fire("not.a.point")

    def test_empty_env_means_no_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert not active_plane().rules


class TestLegacyAliases:
    def test_kill_task_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "5")
        plane = active_plane()
        rule = plane.rule("worker.kill")
        assert rule is not None and rule.task == 5
        assert plane.fire("worker.kill", index=4) is None
        assert plane.fire("worker.kill", index=5) is not None
        # legacy semantics: fires on *every* matching dispatch
        assert plane.fire("worker.kill", index=5) is not None

    def test_negative_kill_task_parses_but_never_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "-1")
        assert fire("worker.kill", index=0) is None

    def test_delay_task_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DELAY_TASK", "*:0.25")
        rule = active_plane().rule("worker.delay")
        assert rule is not None
        assert rule.task == "*" and rule.seconds == 0.25

    def test_expire_after_alias(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_EXPIRE_AFTER", "chase_steps:12")
        assert expire_rule() == ("chase_steps", 12)

    def test_expire_rule_default(self):
        assert expire_rule() == (None, 0)

    @pytest.mark.parametrize(
        "name, value",
        [
            ("REPRO_FAULT_KILL_TASK", "soon"),
            ("REPRO_FAULT_DELAY_TASK", "3"),  # missing :seconds
            ("REPRO_FAULT_DELAY_TASK", "*:fast"),
            ("REPRO_FAULT_DELAY_TASK", "*:-1"),
            ("REPRO_FAULT_EXPIRE_AFTER", "instances"),
            ("REPRO_FAULT_EXPIRE_AFTER", "disk:3"),
            ("REPRO_FAULT_EXPIRE_AFTER", "instances:many"),
        ],
    )
    def test_malformed_legacy_knobs_raise(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(FaultSpecError):
            active_plane()

    def test_empty_legacy_value_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "")
        assert active_plane().rule("worker.kill") is None

    def test_repro_faults_overrides_alias_for_same_point(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "5")
        monkeypatch.setenv("REPRO_FAULTS", "worker.kill:task=9")
        rule = active_plane().rule("worker.kill")
        assert rule is not None and rule.task == 9

    def test_alias_survives_unrelated_repro_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "5")
        monkeypatch.setenv("REPRO_FAULTS", "journal.flush:every=2")
        plane = active_plane()
        assert plane.rule("worker.kill") is not None
        assert plane.rule("journal.flush") is not None


class TestFaultScope:
    def test_scope_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.read")
        with fault_scope(None):
            assert fire("store.read") is None
        assert fire("store.read") is not None

    def test_scope_accepts_mapping_form(self):
        with fault_scope({"worker.delay": {"task": "*", "seconds": 2.0}}):
            rule = fire("worker.delay", index=3)
            assert rule is not None and rule.seconds == 2.0

    def test_mapping_form_rejects_unknown_point(self):
        with pytest.raises(FaultSpecError):
            with fault_scope({"bogus.point": {}}):
                pass

    def test_scopes_nest(self):
        with fault_scope("store.read"):
            with fault_scope("store.write"):
                assert fire("store.read") is None
                assert fire("store.write") is not None
            assert fire("store.read") is not None

    def test_scope_replays_fresh_counters(self):
        spec = "store.read:at=1"
        for _ in range(3):
            with fault_scope(spec):
                assert fire("store.read") is not None
                assert fire("store.read") is None

    def test_injections_land_on_engine_counters(self):
        with fault_scope("store.read:at=1"):
            fire("store.read")
            fire("store.read")
        stats = engine_stats()
        assert stats.counter("faults_injected") == 1
        assert stats.counter("fault_store_read") == 1


class TestRegistry:
    def test_every_point_is_documented(self):
        for point, description in FAULT_POINTS.items():
            assert "." in point and description

    def test_plane_repr_and_rule_repr_are_stable(self):
        plane = FaultPlane({"store.read": FaultRule("store.read", at=2)})
        assert "store.read" in repr(plane)
        assert "at=2" in repr(plane.rules["store.read"])
