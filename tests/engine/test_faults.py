"""Fault tolerance: worker supervision, budgets, and partial verdicts.

Every scenario here is deterministic: faults are injected through the
``REPRO_FAULT_*`` environment knobs (which act only inside forked
workers, never in the parent's recovery path) or through explicit
:class:`~repro.engine.budget.Budget` objects whose fault-expiry knob
counts charges instead of reading the clock.
"""

import pickle
import warnings

import pytest

from repro.catalog import decomposition, decomposition_quasi_inverse_join
from repro.core import SolutionEquivalence, subset_property
from repro.core.framework import is_quasi_inverse, unique_solutions_property
from repro.analysis.invertibility import invertibility_report
from repro.dataexchange.recovery import analyze_round_trip, faithful_on, sound_on
from repro.engine import (
    ParallelUniverseRunner,
    engine_stats,
    fork_available,
    reset_all_caches,
)
from repro.engine.budget import (
    Budget,
    SweepVerdict,
    coverage_events,
    reset_coverage_events,
    use_budget,
    worst_coverage,
)
from repro.engine.checkpoint import CheckpointJournal
from repro.engine.parallel import default_workers
from repro import errors
from repro.errors import (
    BudgetExceeded,
    ChaseError,
    DeadlineExceeded,
    ReproError,
    WorkerFault,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _square(x):
    return x * x


def _raise_at_seven(x):
    if x == 7:
        raise ValueError("boom at 7")
    return x


@pytest.fixture(autouse=True)
def _clean_registries():
    reset_coverage_events()
    engine_stats().reset()
    yield
    reset_coverage_events()


def _decomposition_universe(max_facts=2):
    from repro.workloads import instance_universe

    mapping = decomposition()
    return mapping, list(
        instance_universe(
            mapping.source, ["a", "b"], max_facts=max_facts, include_empty=False
        )
    )


@needs_fork
class TestWorkerDeath:
    def test_sigkilled_worker_is_recovered(self, monkeypatch):
        """A worker SIGKILLed mid-map must not hang the sweep, and the
        merged results must equal a serial run's exactly."""
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "5")
        runner = ParallelUniverseRunner(workers=2, chunk_size=2)
        assert runner.map(_square, range(12)) == [i * i for i in range(12)]
        assert engine_stats().worker_faults >= 1

    def test_sigkilled_worker_checker_verdict_matches_serial(self, monkeypatch):
        """Acceptance: kill one worker mid-sweep; the checker completes
        with the serial verdict and coverage == "exhaustive"."""
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        reset_all_caches()
        serial = sound_on(mapping, reverse, universe, workers=1)

        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "1")
        reset_all_caches()
        parallel = sound_on(mapping, reverse, universe, workers=2)
        assert tuple(parallel) == tuple(serial)
        assert parallel.coverage == "exhaustive"
        assert parallel.instances_checked == len(universe)
        assert engine_stats().worker_faults >= 1
        assert coverage_events() == ()  # recovery is not a partial verdict

    def test_on_fault_raise_surfaces_worker_fault(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "0")
        runner = ParallelUniverseRunner(workers=2, chunk_size=2, on_fault="raise")
        with pytest.raises(WorkerFault) as excinfo:
            runner.map(_square, range(8))
        assert excinfo.value.context["kind"] in ("died", "timeout")

    def test_on_fault_raise_degrades_checker_to_faulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "0")
        monkeypatch.setenv("REPRO_ON_FAULT", "raise")
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        reset_all_caches()
        verdict = sound_on(mapping, reverse, universe, workers=2)
        assert verdict.coverage == "faulted"
        events = coverage_events()
        assert events and worst_coverage(*(e.coverage for e in events)) == "faulted"

    def test_stuck_worker_times_out_and_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_DELAY_TASK", "*:30")
        runner = ParallelUniverseRunner(
            workers=2, chunk_size=2, task_timeout=0.2
        )
        assert runner.map(_square, range(8)) == [i * i for i in range(8)]
        assert engine_stats().worker_faults >= 1


@needs_fork
class TestTaskExceptions:
    def test_task_exception_replays_in_serial_order(self):
        """A task raising inside the pool surfaces the same exception,
        after the same prefix, as a serial run."""
        runner = ParallelUniverseRunner(workers=2, chunk_size=3)
        seen = []
        with pytest.raises(ValueError, match="boom at 7"):
            for result in runner.map_iter(_raise_at_seven, range(20)):
                seen.append(result)
        assert seen == list(range(7))


class TestBudgets:
    def test_instance_cap_stops_sweep_with_partial_verdict(self):
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        verdict = sound_on(
            mapping, reverse, universe, workers=1, budget=Budget(max_instances=2)
        )
        ok, violators = verdict  # legacy tuple unpacking still works
        assert isinstance(verdict, SweepVerdict)
        assert verdict.coverage == "budget"
        assert verdict.instances_checked == 2
        assert coverage_events()[0].coverage == "budget"

    def test_deadline_trips_mid_chase_on_figure1_soundness_sweep(
        self, monkeypatch
    ):
        """Acceptance: a deadline-limited Figure 1 soundness sweep
        returns a partial verdict — coverage "deadline" with a nonzero
        instances-checked count — instead of raising."""
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()

        # Measure the chase work of the first instance (cold caches, so
        # the sweep below recomputes the same steps), then expire the
        # (fault-injected) deadline one chase step later: instance 1
        # completes, a later instance trips mid-chase.
        reset_all_caches()
        probe = Budget(deadline=3600.0)
        with use_budget(probe):
            analyze_round_trip(mapping, reverse, universe[0])
        assert probe.chase_steps >= 1
        reset_all_caches()

        monkeypatch.setenv(
            "REPRO_FAULT_EXPIRE_AFTER", f"chase_steps:{probe.chase_steps + 1}"
        )
        verdict = sound_on(
            mapping, reverse, universe, workers=1, budget=Budget(deadline=3600.0)
        )
        assert verdict.coverage == "deadline"
        assert 0 < verdict.instances_checked < len(universe)
        assert verdict.ok  # no violation among the instances checked
        event = coverage_events()[0]
        assert event.phase == "check.sound_on"
        assert event.coverage == "deadline"

    def test_pre_expired_deadline_reports_zero_instances(self):
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        verdict = faithful_on(
            mapping, reverse, universe, workers=1, budget=Budget(deadline=0.0)
        )
        assert verdict.coverage == "deadline"
        assert verdict.instances_checked == 0

    def test_analyze_round_trip_degrades_instead_of_raising(self):
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        report = analyze_round_trip(
            mapping, reverse, universe[0], budget=Budget(deadline=0.0)
        )
        assert report.trip is None
        assert report.coverage == "deadline"
        assert not report.sound and not report.faithful
        assert report.recovered_instance is None

    def test_subset_property_reports_partial_coverage(self):
        mapping, universe = _decomposition_universe(max_facts=1)
        relation = SolutionEquivalence(mapping)
        report = subset_property(
            mapping,
            relation,
            relation,
            universe,
            workers=1,
            budget=Budget(max_instances=1),
        )
        assert report.coverage == "budget"
        assert not report.exhaustive
        assert report.instances_checked == 1

    def test_unique_solutions_returns_sweep_verdict(self):
        mapping, universe = _decomposition_universe(max_facts=1)
        holds, violations = unique_solutions_property(mapping, universe, workers=1)
        verdict = unique_solutions_property(mapping, universe, workers=1)
        assert verdict.coverage == "exhaustive"
        assert verdict.instances_checked == len(universe)

    def test_inverse_check_reports_partial_coverage(self):
        mapping, universe = _decomposition_universe(max_facts=1)
        report = is_quasi_inverse(
            mapping,
            decomposition_quasi_inverse_join(),
            universe,
            budget=Budget(max_instances=1),
        )
        assert report.coverage == "budget"
        assert not report.exhaustive

    def test_invertibility_report_aggregates_worst_coverage(self):
        mapping, universe = _decomposition_universe(max_facts=1)
        exhaustive = invertibility_report(mapping, universe)
        assert exhaustive.coverage == "exhaustive"
        assert exhaustive.exhaustive
        partial = invertibility_report(
            mapping, universe, budget=Budget(max_instances=1)
        )
        assert partial.coverage == "budget"
        assert not partial.exhaustive

    def test_algorithm_budget_errors_still_propagate(self):
        """Caller-specified algorithm bounds (max_nulls &c.) are hard
        errors — the governance layer must not swallow them."""
        from repro.errors import CompositionBudgetError, governed_coverage

        error = CompositionBudgetError("too many nulls", kind="composition_nulls")
        assert governed_coverage(error) is None

    def test_chase_step_cap_raises_budget_exceeded(self):
        from repro.dataexchange.exchange import round_trip

        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        with use_budget(Budget(max_chase_steps=1)):
            with pytest.raises(BudgetExceeded) as excinfo:
                for instance in universe:
                    round_trip(mapping, reverse, instance)
        assert excinfo.value.kind == "chase_steps"


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_from_verified_prefix(self, tmp_path):
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        path = str(tmp_path / "journal.json")

        first = sound_on(
            mapping,
            reverse,
            universe,
            workers=1,
            budget=Budget(max_instances=3),
            checkpoint=CheckpointJournal(path, interval=1),
        )
        assert first.coverage == "budget"
        assert first.instances_checked == 3

        resumed = sound_on(
            mapping,
            reverse,
            universe,
            workers=1,
            checkpoint=CheckpointJournal(path, interval=1),
        )
        baseline = sound_on(mapping, reverse, universe, workers=1)
        assert resumed.ok == baseline.ok
        assert resumed.coverage == "exhaustive"
        assert resumed.instances_checked == len(universe)

    def test_stale_journal_entries_are_discarded(self, tmp_path):
        mapping, universe = _decomposition_universe()
        reverse = decomposition_quasi_inverse_join()
        path = str(tmp_path / "journal.json")
        sound_on(
            mapping,
            reverse,
            universe,
            workers=1,
            budget=Budget(max_instances=2),
            checkpoint=CheckpointJournal(path, interval=1),
        )
        # A different universe length must restart from scratch.
        verdict = sound_on(
            mapping,
            reverse,
            universe[:-1],
            workers=1,
            checkpoint=CheckpointJournal(path, interval=1),
        )
        assert verdict.instances_checked == len(universe) - 1


class TestWorkerKnobs:
    def test_invalid_repro_workers_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "a-very-bogus-count")
        with pytest.warns(RuntimeWarning, match="a-very-bogus-count"):
            assert default_workers() == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call must stay silent
            assert default_workers() == 1


class TestErrorHierarchy:
    def test_legacy_aliases_point_at_unified_hierarchy(self):
        from repro.chase.standard import ChaseError as chase_alias
        from repro.core.mapping import MappingError as mapping_alias
        from repro.dependencies.parser import ParseError as parser_alias
        from repro.workloads.universes import UniverseTooLarge as universe_alias

        assert chase_alias is errors.ChaseError
        assert mapping_alias is errors.MappingError
        assert parser_alias is errors.ParseError
        assert universe_alias is errors.UniverseTooLarge
        for cls in (chase_alias, mapping_alias, parser_alias, universe_alias):
            assert issubclass(cls, ReproError)

    def test_legacy_builtin_bases_are_preserved(self):
        assert issubclass(errors.MappingError, ValueError)
        assert issubclass(errors.ParseError, ValueError)
        assert issubclass(errors.UniverseTooLarge, ValueError)
        assert issubclass(errors.ChaseError, RuntimeError)
        assert issubclass(errors.BudgetExceeded, RuntimeError)
        assert issubclass(errors.DeadlineExceeded, errors.BudgetExceeded)

    def test_context_survives_pickling(self):
        original = DeadlineExceeded(
            "deadline passed", kind="deadline", limit=1.5, consumed=2.0
        )
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is DeadlineExceeded
        assert clone.message == "deadline passed"
        assert clone.kind == "deadline"
        assert clone.limit == 1.5
        assert clone.consumed == 2.0

    def test_chase_error_carries_machine_readable_context(self):
        from repro.chase.standard import chase
        from repro.dependencies.parser import parse_dependency

        mapping, universe = _decomposition_universe(max_facts=1)
        dependency = parse_dependency("P(x, y, z) -> Q(x, y) & R(y, z)")
        with pytest.raises(ChaseError) as excinfo:
            chase(universe[0], [dependency], max_steps=0)
        assert excinfo.value.context["kind"] == "chase_steps"
        assert excinfo.value.context["limit"] == 0

    def test_sweep_verdict_pickles_with_metadata(self):
        verdict = SweepVerdict(
            True, (), coverage="deadline", instances_checked=4
        )
        clone = pickle.loads(pickle.dumps(verdict))
        assert clone == (True, ())
        assert clone.coverage == "deadline"
        assert clone.instances_checked == 4
