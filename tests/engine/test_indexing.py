"""Unit tests for the engine's inverted fact index."""

from repro.chase.homomorphism import (
    _match_atom,
    all_homomorphisms,
    find_homomorphism,
)
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Variable
from repro.engine import FactIndex, fact_index

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestFactIndex:
    def test_postings_group_by_relation_position_term(self):
        instance = Instance.build({"P": [("a", "b"), ("a", "c"), ("d", "b")]})
        index = FactIndex(instance)
        posting = index.postings[("P", 0, Constant("a"))]
        assert len(posting) == 2
        assert all(fact.args[0] == Constant("a") for fact in posting)

    def test_postings_preserve_sorted_fact_order(self):
        instance = Instance.build({"P": [("a", "b"), ("a", "c"), ("a", "a")]})
        index = FactIndex(instance)
        posting = index.postings[("P", 0, Constant("a"))]
        assert posting == instance.facts_for("P")

    def test_candidates_with_rigid_constant(self):
        instance = Instance.build({"P": [("a", "b"), ("c", "d")]})
        index = FactIndex(instance)
        candidates = index.candidates(atom("P", "a", Y), {})
        assert [fact.args[0] for fact in candidates] == [Constant("a")]

    def test_candidates_with_bound_variable(self):
        instance = Instance.build({"P": [("a", "b"), ("c", "d")]})
        index = FactIndex(instance)
        candidates = index.candidates(atom("P", X, Y), {X: Constant("c")})
        assert [fact.args[0] for fact in candidates] == [Constant("c")]

    def test_candidates_picks_most_selective_position(self):
        instance = Instance.build(
            {"P": [("a", "b"), ("a", "c"), ("a", "d"), ("e", "b")]}
        )
        index = FactIndex(instance)
        # position 0 = "a" has 3 facts; position 1 = "b" has 2
        candidates = index.candidates(
            atom("P", "a", Y), {Y: Constant("b")}
        )
        assert len(candidates) <= 2

    def test_unbound_pattern_falls_back_to_full_extent(self):
        instance = Instance.build({"P": [("a", "b"), ("c", "d")]})
        index = FactIndex(instance)
        assert index.candidates(atom("P", X, Y), {}) == instance.facts_for("P")

    def test_empty_posting_short_circuits(self):
        instance = Instance.build({"P": [("a", "b")]})
        index = FactIndex(instance)
        assert index.candidates(atom("P", "zzz", Y), {}) == ()
        assert index.candidates(atom("P", X, Y), {X: Constant("zzz")}) == ()

    def test_index_is_memoized_per_instance(self):
        instance = Instance.build({"P": [("a", "b")]})
        assert fact_index(instance) is fact_index(instance)
        # the memo keys by value, so an equal instance shares the index
        clone = Instance.build({"P": [("a", "b")]})
        assert fact_index(clone) is fact_index(instance)

    def test_copies_never_rebuild_the_index(self):
        # regression: instance copies (checkpoint replay, worker
        # round-trips) used to rebuild postings from scratch; the
        # facts-keyed fallback memo must absorb them
        from repro.engine.indexing import index_build_count

        rows = [("a", "b"), ("b", "c"), ("c", "a")]
        fact_index(Instance.build({"P": rows}))
        before = index_build_count()
        for _ in range(5):
            copy = Instance.build({"P": list(rows)})
            fact_index(copy)
            find_homomorphism([atom("P", X, Y)], copy)
        assert index_build_count() == before


class TestIndexedSearchEquivalence:
    """The indexed search must return exactly what a linear scan would."""

    def brute_force(self, premise, target):
        """All homomorphisms by unindexed enumeration, for comparison."""
        results = []

        def extend(remaining, assignment):
            if not remaining:
                results.append(dict(assignment))
                return
            current, rest = remaining[0], remaining[1:]
            for fact in target.facts_for(current.relation):
                extension = _match_atom(current, fact, assignment)
                if extension is not None:
                    extend(rest, {**assignment, **extension})

        extend(list(premise), {})
        return results

    def test_all_homomorphisms_agree_with_brute_force(self):
        target = Instance.build(
            {"P": [("a", "b"), ("b", "c"), ("c", "a")], "Q": [("b",), ("c",)]}
        )
        premise = [atom("P", X, Y), atom("Q", Y), atom("P", Y, Z)]
        found = list(all_homomorphisms(premise, target))
        expected = self.brute_force(premise, target)
        assert len(found) == len(expected)
        assert all(hom in expected for hom in found)

    def test_find_homomorphism_joins_through_the_index(self):
        target = Instance.build({"P": [("a", "b")], "Q": [("b", "c")]})
        found = find_homomorphism([atom("P", X, Y), atom("Q", Y, Z)], target)
        assert found == {X: Constant("a"), Y: Constant("b"), Z: Constant("c")}
        assert (
            find_homomorphism([atom("P", X, Y), atom("Q", Y, Y)], target) is None
        )
