"""Tests for the engine's counter naming and machine-readable stats."""

from repro.engine.cache import MemoCache, all_cache_stats
from repro.engine.instrumentation import EngineStats, engine_stats


class TestCounterNaming:
    def test_cache_counters_use_canonical_keys(self):
        cache = MemoCache("naming-demo", maxsize=4)
        cache.get("missing")
        cache.put("present", 1)
        cache.get("present")
        counters = cache.stats().counters()
        assert counters == {
            "naming-demo_cache_hits": 1,
            "naming-demo_cache_misses": 1,
            "naming-demo_cache_evictions": 0,
        }

    def test_engine_counters_and_render_share_names(self):
        # the rendered report and the machine-readable dict are built
        # from the same CacheStats.counters() keys — any drift (the old
        # chase_hits vs chase_cache_hits split) fails here
        counters = engine_stats().counters()
        for stats in all_cache_stats():
            prefix = f"{stats.name}_cache"
            for suffix in ("hits", "misses", "evictions"):
                assert f"{prefix}_{suffix}" in counters
                assert f"{stats.name}_{suffix}" not in counters or (
                    f"{stats.name}_{suffix}" == f"{prefix}_{suffix}"
                )
            rendered = stats.render()
            assert rendered.startswith(f"cache {stats.name}")

    def test_phase_counters_flattened(self):
        stats = EngineStats()
        with stats.phase("chase"):
            pass
        with stats.phase("chase"):
            pass
        counters = stats.counters()
        assert counters["chase_calls"] == 2
        assert counters["chase_seconds"] >= 0.0
        assert counters["instances_processed"] == 0
        assert counters["worker_faults"] == 0
