"""Unit tests for the compiled relational kernel backend."""

from array import array

import pytest

from repro.chase.standard import _sorted_matches
from repro.core.mapping import SchemaMapping, universal_solution
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null, Variable
from repro.dependencies.parser import parse_dependency
from repro.engine import reset_all_caches, use_backend
from repro.engine.kernel import (
    BACKEND_KERNEL,
    BACKEND_OBJECT,
    InternTable,
    KernelInstance,
    active_backend,
    default_backend,
    install_backend,
    intern_table,
    kernel_active,
    kernel_has_homomorphism,
    kernel_instance,
    resolve_backend,
    sorted_premise_matches,
)

X, Y = Variable("x"), Variable("y")


class TestInternTable:
    def test_ids_are_dense_and_stable(self):
        table = InternTable()
        a = table.intern(Constant("a"))
        b = table.intern(Constant("b"))
        assert (a, b) == (0, 1)
        assert table.intern(Constant("a")) == a
        assert len(table) == 2

    def test_round_trip_and_constness(self):
        table = InternTable()
        cid = table.intern(Constant("a"))
        nid = table.intern(Null("n"))
        assert table.term(cid) == Constant("a")
        assert table.term(nid) == Null("n")
        assert table.is_const(cid) and not table.is_const(nid)

    def test_process_table_is_shared(self):
        assert intern_table() is intern_table()


class TestKernelInstance:
    def test_rows_follow_sorted_fact_order(self):
        instance = Instance.build({"P": [("b", "a"), ("a", "c"), ("a", "b")]})
        kinst = kernel_instance(instance)
        table = intern_table()
        decoded = [
            tuple(table.term(tid) for tid in row) for row in kinst.rows["P"]
        ]
        expected = [fact.args for fact in instance.facts_for("P")]
        assert decoded == expected

    def test_postings_are_packed_ascending_row_indexes(self):
        instance = Instance.build({"P": [("a", "b"), ("a", "c"), ("d", "b")]})
        kinst = kernel_instance(instance)
        tid = intern_table().intern(Constant("a"))
        posting = kinst.postings[("P", 0, tid)]
        assert isinstance(posting, array) and posting.typecode == "q"
        assert list(posting) == sorted(posting)
        assert len(posting) == 2

    def test_ground_flag(self):
        assert kernel_instance(Instance.build({"P": [("a", "b")]})).is_ground
        withnull = Instance.build({"P": [(Null("n"), Constant("b"))]})
        assert not kernel_instance(withnull).is_ground

    def test_copies_share_one_kernel_instance(self):
        instance = Instance.build({"P": [("a", "b")]})
        clone = Instance.build({"P": [("a", "b")]})
        assert kernel_instance(instance) is kernel_instance(clone)

    def test_reset_drops_instance_memos(self):
        instance = Instance.build({"P": [("a", "b")]})
        before = kernel_instance(instance)
        reset_all_caches()
        after = kernel_instance(instance)
        assert after is not before


class TestBackendSelection:
    def test_resolve_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "kernel")
        assert default_backend() == BACKEND_KERNEL
        assert kernel_active()
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        assert default_backend() == BACKEND_OBJECT

    def test_use_backend_nests_and_restores(self):
        assert not kernel_active()
        with use_backend("kernel"):
            assert kernel_active() and active_backend() == BACKEND_KERNEL
            with use_backend("object"):
                assert not kernel_active()
            assert kernel_active()
        assert not kernel_active()

    def test_install_backend_is_process_lifetime(self):
        install_backend("kernel")
        try:
            assert kernel_active()
        finally:
            install_backend(None)
        assert not kernel_active()


def _projection_mapping():
    return SchemaMapping.from_text(
        Schema.of({"R": 2}),
        Schema.of({"S": 1}),
        "R(x, y) -> S(x)",
        name="Projection",
    )


class TestSortedPremiseMatches:
    def test_delta_matches_equal_object_backend(self):
        dependency = parse_dependency("R(x, y), R(y, z) -> S(x, z)")
        instance = Instance.build(
            {"R": [("a", "b"), ("b", "c"), ("b", "a"), ("c", "c")]}
        )
        expected = _sorted_matches(dependency, instance)
        with use_backend("kernel"):
            actual = _sorted_matches(dependency, instance)
        assert list(actual) == list(expected)

    def test_non_ground_instances_fall_back_to_full_search(self):
        dependency = parse_dependency("R(x, y) -> S(x)")
        instance = Instance.build({"R": [(Null("n"), Constant("b"))]})
        expected = _sorted_matches(dependency, instance)
        with use_backend("kernel"):
            actual = sorted_premise_matches(dependency, instance)
        assert list(actual) == list(expected)

    def test_matches_grow_with_the_sub_instance_chain(self):
        # every prefix of the lattice chain gets its own cached match
        # list; the final list equals a from-scratch object search
        dependency = parse_dependency("R(x, y) -> S(x)")
        facts = [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]
        for size in range(1, len(facts) + 1):
            instance = Instance.build({"R": facts[:size]})
            expected = _sorted_matches(dependency, instance)
            with use_backend("kernel"):
                actual = _sorted_matches(dependency, instance)
            assert list(actual) == list(expected)


class TestKernelVerdicts:
    def test_chase_results_byte_identical(self):
        mapping = _projection_mapping()
        source = Instance.build({"R": [("a", "b"), ("b", "b")]})
        expected = universal_solution(mapping, source)
        reset_all_caches()
        with use_backend("kernel"):
            actual = universal_solution(mapping, source)
        assert actual.facts == expected.facts

    def test_hom_existence_memoized_per_instance(self):
        source = Instance.build({"P": [("a", "b")]})
        target = Instance.build({"P": [("a", "b"), ("c", "d")]})
        assert kernel_has_homomorphism(source, target)
        ksrc = kernel_instance(source)
        assert ksrc.hom_memo[kernel_instance(target).kid] is True
        assert kernel_has_homomorphism(source, target)

    def test_hom_existence_negative(self):
        source = Instance.build({"P": [("a", "a")]})
        target = Instance.build({"P": [("a", "b")]})
        assert not kernel_has_homomorphism(source, target)
        # nulls are mappable, constants rigid
        flexible = Instance.build({"P": [(Null("n"), Null("n"))]})
        assert kernel_has_homomorphism(flexible, source)
        assert not kernel_has_homomorphism(flexible, target)

    def test_first_match_agrees_on_atom_reordering(self):
        # the compiled plan must replicate the object backend's greedy
        # atom order (most-bound, then smallest extent) exactly
        from repro.chase.homomorphism import find_homomorphism

        target = Instance.build(
            {"P": [("a", "b"), ("b", "c")], "Q": [("b",), ("c",)]}
        )
        premise = [atom("P", X, Y), atom("Q", Y)]
        expected = find_homomorphism(premise, target)
        with use_backend("kernel"):
            actual = find_homomorphism(premise, target)
        assert actual == expected
