"""Serial/parallel equivalence and determinism of the universe runner."""

import pytest

from repro.catalog import (
    decomposition,
    decomposition_quasi_inverse_join,
    projection,
    projection_quasi_inverse,
)
from repro.core import SolutionEquivalence, subset_property
from repro.core.framework import is_inverse, is_quasi_inverse, unique_solutions_property
from repro.engine import (
    ParallelUniverseRunner,
    default_workers,
    fork_available,
    reset_all_caches,
    set_default_workers,
)
from repro.workloads import instance_universe

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)

WORKER_COUNTS = [2, 3, 4]


class TestRunner:
    def test_serial_map_preserves_order(self):
        runner = ParallelUniverseRunner(workers=1)
        assert not runner.parallel
        assert runner.map(lambda x: x * x, range(10)) == [i * i for i in range(10)]

    @needs_fork
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_map_matches_serial(self, workers):
        runner = ParallelUniverseRunner(workers=workers, chunk_size=3)
        assert runner.map(len, [(i,) * (i % 5) for i in range(40)]) == [
            i % 5 for i in range(40)
        ]

    def test_serial_map_iter_is_lazy(self):
        produced = []

        def task(item):
            produced.append(item)
            return item

        runner = ParallelUniverseRunner(workers=1)
        stream = runner.map_iter(task, range(100))
        assert next(stream) == 0
        stream.close()
        assert produced == [0]  # nothing beyond the consumed prefix

    def test_default_workers_round_trip(self):
        original = default_workers()
        try:
            set_default_workers(3)
            assert default_workers() == 3
            assert ParallelUniverseRunner().workers == 3
        finally:
            set_default_workers(original)


@needs_fork
class TestCheckerEquivalence:
    """Every bounded checker must give byte-identical verdicts for any
    worker count (the merge replays the serial control flow)."""

    def setup_method(self):
        reset_all_caches()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_subset_property_verdicts(self, workers):
        mapping = decomposition()
        universe = instance_universe(mapping.source, [0, 1], max_facts=2)
        relation = SolutionEquivalence(mapping)
        serial = subset_property(
            mapping, relation, relation, universe, workers=1
        )
        assert (
            subset_property(mapping, relation, relation, universe, workers=workers)
            == serial
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_subset_property_full_scan_verdicts(self, workers):
        mapping = projection()
        universe = instance_universe(mapping.source, [0, 1], max_facts=2)
        relation = SolutionEquivalence(mapping)
        serial = subset_property(
            mapping,
            relation,
            relation,
            universe,
            workers=1,
            stop_at_first_violation=False,
        )
        parallel = subset_property(
            mapping,
            relation,
            relation,
            universe,
            workers=workers,
            stop_at_first_violation=False,
        )
        assert parallel == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_unique_solutions_verdicts(self, workers):
        mapping = decomposition()
        universe = instance_universe(mapping.source, [0, 1], max_facts=3)
        serial = unique_solutions_property(mapping, universe, workers=1)
        assert unique_solutions_property(mapping, universe, workers=workers) == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_is_inverse_verdicts(self, workers):
        mapping = projection()
        candidate = projection_quasi_inverse()
        universe = instance_universe(mapping.source, [0, 1], max_facts=2)
        serial = is_inverse(mapping, candidate, universe, workers=1)
        assert is_inverse(mapping, candidate, universe, workers=workers) == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_is_quasi_inverse_verdicts(self, workers):
        mapping = decomposition()
        candidate = decomposition_quasi_inverse_join()
        universe = instance_universe(mapping.source, [0, 1], max_facts=1)
        serial = is_quasi_inverse(
            mapping, candidate, universe, workers=1, stop_at_first_mismatch=False
        )
        parallel = is_quasi_inverse(
            mapping,
            candidate,
            universe,
            workers=workers,
            stop_at_first_mismatch=False,
        )
        assert parallel == serial
