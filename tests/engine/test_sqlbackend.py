"""Unit tests for the SQL (SQLite-hosted) execution backend.

The cross-backend property suite (``tests/properties``) establishes
equivalence statistically; these tests pin the mechanisms — the tagged
id encoding, table pooling and instance eviction, small-operand
routing, budget and ``max_steps`` parity, scratch-file mode, and the
``sql.exec`` fault point.
"""

import os
import sqlite3

import pytest

from repro.chase.standard import chase
from repro.core.mapping import universal_solution
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Variable
from repro.dependencies.parser import parse_dependency
from repro.engine import (
    engine_stats,
    reset_all_caches,
    use_backend,
)
from repro.engine.budget import Budget, use_budget
from repro.engine.faults import fault_scope
from repro.engine.kernel import intern_table
from repro.engine.sqlbackend import (
    _MAX_JOIN_ATOMS,
    decode_id,
    encode_term,
    sql_min_facts,
    sql_stratified_chase,
)
from repro.errors import BudgetExceeded, ChaseError
from repro.workloads import random_ground_instance, random_lav_mapping


@pytest.fixture(autouse=True)
def _sql_everything(monkeypatch):
    """Force every operation through the SQL plans (threshold 0)."""
    monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "0")
    reset_all_caches()
    yield
    reset_all_caches()


def _mapping(seed=3):
    return random_lav_mapping(
        seed, n_source=2, n_target=2, max_arity=2, n_tgds=2
    )


class TestEncoding:
    def test_round_trip_and_parity(self):
        intern = intern_table()
        for term in (Constant("a"), Constant(3), Null("n0"), Variable("x")):
            tagged = encode_term(term, intern)
            assert decode_id(tagged, intern) == term
            if isinstance(term, Constant):
                assert tagged % 2 == 0
            else:
                assert tagged % 2 == 1

    def test_encoding_is_stable_across_calls(self):
        intern = intern_table()
        first = encode_term(Constant("stable"), intern)
        assert encode_term(Constant("stable"), intern) == first


class TestChaseEquivalence:
    def test_traced_chase_matches_object_backend(self):
        mapping = _mapping()
        source = random_ground_instance(
            mapping.source, seed=5, n_facts=3, domain_size=2
        )
        with use_backend("object"):
            expected = chase(source, mapping.dependencies)
        reset_all_caches()
        with use_backend("sql"):
            actual = chase(source, mapping.dependencies)
        assert actual.instance.facts == expected.instance.facts
        assert actual.steps == expected.steps

    def test_bulk_full_tgd_firing_count_matches(self):
        deps = (
            parse_dependency("E(x, y) -> F(x, y)"),
            parse_dependency("E(x, y) & E(y, z) -> F(x, z)"),
        )
        source = Instance.build(
            {"E": [("a", "b"), ("b", "c"), ("c", "d")]}
        )
        with use_backend("object"):
            expected = chase(source, deps)
        reset_all_caches()
        before = engine_stats().counter("sql_chase_firings")
        with use_backend("sql"):
            actual = chase(source, deps, trace=False)
        fired = engine_stats().counter("sql_chase_firings") - before
        assert actual.instance.facts == expected.instance.facts
        assert fired == len(expected.steps)

    def test_nullary_facts_round_trip(self):
        deps = (parse_dependency("P(x) -> Flag()"),)
        source = Instance.of([atom("P", "a")])
        with use_backend("sql"):
            result = chase(source, deps, trace=False)
        assert atom("Flag") in result.instance.facts

    def test_budget_trip_is_byte_identical(self):
        mapping = _mapping(11)
        source = random_ground_instance(
            mapping.source, seed=2, n_facts=4, domain_size=2
        )
        errors = {}
        for backend in ("object", "sql"):
            reset_all_caches()
            with use_backend(backend), use_budget(Budget(max_chase_steps=1)):
                try:
                    universal_solution(mapping, source)
                    errors[backend] = None
                except BudgetExceeded as error:
                    errors[backend] = (type(error), str(error))
        assert errors["sql"] == errors["object"]

    def test_max_steps_trip_is_identical(self):
        deps = (parse_dependency("E(x, y) & E(y, z) -> E(x, z)"),)
        source = Instance.build(
            {"E": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")]}
        )
        messages = {}
        for backend in ("object", "sql"):
            reset_all_caches()
            with use_backend(backend):
                with pytest.raises(ChaseError) as info:
                    chase(source, deps, max_steps=2, trace=False)
                messages[backend] = str(info.value)
        assert messages["sql"] == messages["object"]


class TestRoutingAndFallbacks:
    def test_small_operands_route_to_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_MIN_FACTS", "1000")
        assert sql_min_facts() == 1000
        mapping = _mapping()
        source = random_ground_instance(
            mapping.source, seed=5, n_facts=3, domain_size=2
        )
        before = engine_stats().counter("sql_small_routed")
        with use_backend("sql"):
            chase(source, mapping.dependencies)
        assert engine_stats().counter("sql_small_routed") > before

    def test_wide_premise_falls_back(self):
        wide = " & ".join(
            f"P(x{i}, x{i + 1})" for i in range(_MAX_JOIN_ATOMS + 1)
        )
        dep = parse_dependency(f"{wide} -> Q(x0)")
        source = Instance.build({"P": [("a", "a")]})
        before = engine_stats().counter("sql_fallbacks")
        with use_backend("sql"):
            result = sql_stratified_chase(
                source,
                (dep,),
                null_factory=None,
                max_steps=10_000,
                trace=False,
            )
        assert result is None
        assert engine_stats().counter("sql_fallbacks") > before


class TestFaultsAndScratchFile:
    def test_sql_exec_fault_retries_and_result_is_identical(self):
        mapping = _mapping(7)
        source = random_ground_instance(
            mapping.source, seed=9, n_facts=3, domain_size=2
        )
        with use_backend("sql"):
            expected = universal_solution(mapping, source)
        reset_all_caches()
        before = engine_stats().counter("sql_retries")
        with fault_scope("sql.exec:at=3"), use_backend("sql"):
            actual = universal_solution(mapping, source)
        assert actual.facts == expected.facts
        assert engine_stats().counter("sql_retries") > before

    def test_scratch_file_mode(self, tmp_path, monkeypatch):
        db = tmp_path / "scratch.db"
        monkeypatch.setenv("REPRO_SQL_DB", str(db))
        reset_all_caches()
        mapping = _mapping(13)
        source = random_ground_instance(
            mapping.source, seed=1, n_facts=3, domain_size=2
        )
        with use_backend("sql"):
            actual = universal_solution(mapping, source)
        assert db.exists()
        monkeypatch.delenv("REPRO_SQL_DB")
        reset_all_caches()
        with use_backend("object"):
            expected = universal_solution(mapping, source)
        assert actual.facts == expected.facts


class TestPoolingAndEviction:
    def test_instances_past_capacity_are_evicted(self, monkeypatch):
        import repro.engine.sqlbackend as sb

        monkeypatch.setattr(sb, "_MAX_LIVE_INSTANCES", 4)
        before = engine_stats().counter("sql_evictions")
        with use_backend("sql"):
            for seed in range(12):
                target = random_ground_instance(
                    _mapping().target, seed=seed, n_facts=3, domain_size=3
                )
                # one pinned operation per instance; older ones go cold
                from repro.chase.homomorphism import instance_homomorphism

                instance_homomorphism(target, target)
        assert engine_stats().counter("sql_evictions") > before

    def test_evicted_instance_is_relowered_transparently(self, monkeypatch):
        import repro.engine.sqlbackend as sb
        from repro.chase.homomorphism import instance_homomorphism

        monkeypatch.setattr(sb, "_MAX_LIVE_INSTANCES", 1)
        keep = Instance.build({"P": [("a", "b")]})
        with use_backend("sql"):
            first = instance_homomorphism(keep, keep)
            for seed in range(6):
                other = random_ground_instance(
                    _mapping().target, seed=seed, n_facts=2, domain_size=2
                )
                instance_homomorphism(other, other)
            again = instance_homomorphism(keep, keep)
        assert again == first

    def test_runtime_reuses_pooled_tables(self):
        import repro.engine.sqlbackend as sb
        from repro.chase.homomorphism import instance_homomorphism

        with use_backend("sql"):
            seed_instance = Instance.build({"P": [("a", "b")]})
            instance_homomorphism(seed_instance, seed_instance)
            rt = sb._runtime()
            created = rt.ntables
            # chase working tables come from — and return to — the pool
            deps = (parse_dependency("P(x, y) -> Q(y, x)"),)
            for _ in range(5):
                chase(seed_instance, deps, trace=False)
            assert rt.ntables <= created + 2


class TestExportParity:
    def test_backend_matches_executed_export(self):
        """The backend's chase equals the exporter's script run through
        a plain sqlite3 connection (full GAV mapping, TEXT values)."""
        from repro.export.sql import (
            instance_to_inserts,
            mapping_to_sql,
        )
        from repro.core.mapping import SchemaMapping
        from repro.datamodel.schemas import Schema

        mapping = SchemaMapping.from_text(
            Schema.of({"E": 2}),
            Schema.of({"F": 2, "V": 1}),
            "E(x, y) -> F(x, y); E(x, y) -> V(x) & V(y)",
            name="edges",
        )
        source = Instance.build({"E": [("a", "b"), ("b", "c")]})
        script = mapping_to_sql(mapping)
        ddl, _, transforms = script.partition("-- mapping\n")
        connection = sqlite3.connect(":memory:")
        connection.executescript(ddl)
        connection.executescript(instance_to_inserts(source))
        connection.executescript(transforms)
        with use_backend("sql"):
            chased = universal_solution(mapping, source)
        for relation in ("F", "V"):
            rows = set(
                connection.execute(f"SELECT * FROM {relation.lower()}")
            )
            expected = {
                tuple(str(arg.value) for arg in fact.args)
                for fact in chased.facts_for(relation)
            }
            assert rows == expected
