"""Tests for the on-disk verdict store, sweep sharding, and the
checkpoint journal's integrity fixes (fingerprints, flush cleanup,
shard leases)."""

import glob
import itertools
import json
import os
import time

import pytest

from repro.catalog import all_catalog_mappings, decomposition, projection
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Null
from repro.engine import (
    ENGINE_VERSION,
    VerdictStore,
    cached_chase_result,
    canonical_key,
    default_store,
    engine_stats,
    reset_all_caches,
    shard_of_instance,
    stable_digest,
    use_store,
)
from repro.engine.budget import Budget
from repro.engine.cache import active_store, uninstall_store, verdict_cache
from repro.engine.checkpoint import (
    CheckpointJournal,
    claim_shards,
    dropped_flush_count,
    reset_dropped_flush_count,
    shard_entry_key,
)
from repro.engine.symmetry import plan_sweep
from repro.core.framework import (
    SolutionEquivalence,
    subset_property,
    unique_solutions_property,
)
from repro.workloads import power_instances


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_all_caches()
    yield
    reset_all_caches()


def _projection_setup():
    mapping = projection()
    universe = list(
        power_instances(mapping.source, domain=("a", "b"), max_facts=2)
    )
    return mapping, SolutionEquivalence(mapping), universe


class TestStableDigest:
    def test_equal_keys_digest_equally(self):
        left = Instance.build({"P": [("a", Null("n"))]})
        right = Instance.build({"P": [("a", Null("n"))]})
        key = ("verdict", canonical_key(left))
        assert stable_digest(key) == stable_digest(
            ("verdict", canonical_key(right))
        )

    def test_distinct_keys_diverge(self):
        assert stable_digest(("a", 1)) != stable_digest(("a", "1"))
        assert stable_digest(("a",)) != stable_digest(("a", None))


class TestVerdictStore:
    def test_round_trip_chase_and_verdict(self, tmp_path):
        store = VerdictStore(tmp_path / "s.sqlite")
        instance = Instance.build({"P": [("a", Null("n"), "c")]})
        store.save("chase", ("k1",), instance)
        store.save("verdict", ("k2",), True)
        store.flush()
        hit, value = store.load("chase", ("k1",))
        assert hit and value == instance
        hit, value = store.load("verdict", ("k2",))
        assert hit and value is True
        hit, _ = store.load("verdict", ("absent",))
        assert not hit

    def test_unknown_caches_do_not_persist(self, tmp_path):
        store = VerdictStore(tmp_path / "s.sqlite")
        assert store.persists("chase") and store.persists("verdict")
        assert not store.persists("kinstance")
        store.save("kinstance", ("k",), object())
        store.flush()
        assert store.entry_count() == 0

    def test_entries_survive_reopen(self, tmp_path):
        path = tmp_path / "s.sqlite"
        first = VerdictStore(path)
        first.save("verdict", ("k",), False)
        first.close()
        second = VerdictStore(path)
        hit, value = second.load("verdict", ("k",))
        assert hit and value is False

    def test_engine_version_mismatch_drops_entries(self, tmp_path):
        path = tmp_path / "s.sqlite"
        old = VerdictStore(path, engine_version="ancient")
        old.save("verdict", ("k",), True)
        old.close()
        current = VerdictStore(path)  # ENGINE_VERSION
        hit, _ = current.load("verdict", ("k",))
        assert not hit
        # and the store is restamped: reopening with the current
        # version keeps newly written entries
        current.save("verdict", ("k2",), True)
        current.close()
        again = VerdictStore(path)
        assert again.load("verdict", ("k2",)) == (True, True)
        assert again.engine_version == ENGINE_VERSION

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        import sqlite3

        path = tmp_path / "s.sqlite"
        store = VerdictStore(path)
        store.save("chase", ("k",), Instance.build({"P": [("a",)]}))
        store.close()
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("UPDATE entries SET value = 'not json'")
        connection.close()
        reopened = VerdictStore(path)
        hit, _ = reopened.load("chase", ("k",))
        assert not hit
        assert reopened.read_errors == 1
        assert reopened.integrity_errors == 1
        assert reopened.quarantine_count() == 1

    def test_unusable_path_is_counted_not_raised(self, tmp_path):
        store = VerdictStore(tmp_path / "no" / "such" / "dir" / "s.sqlite")
        store.save("verdict", ("k",), True)
        store.flush()
        hit, _ = store.load("verdict", ("other",))
        assert not hit
        assert store.stats().write_errors > 0

    def test_read_and_write_errors_counted_separately(self, tmp_path):
        store = VerdictStore(tmp_path / "no" / "such" / "dir" / "s.sqlite")
        hit, _ = store.load("verdict", ("k",))
        assert not hit
        assert store.read_errors == 1 and store.write_errors == 0
        store.save("verdict", ("k",), True)
        store.flush()
        assert store.write_errors == 1 and store.read_errors == 1
        counters = store.stats().counters()
        assert counters["store_read_errors"] == 1
        assert counters["store_write_errors"] == 1

    def test_fork_guard_protects_entries_buffered_by_the_child(self, tmp_path):
        store = VerdictStore(tmp_path / "s.sqlite")
        store.save("verdict", ("parent",), True)  # parent-buffered
        store._pid -= 1  # simulate a fork: inherited pid differs
        # the child's first store activity is a save — the inherited
        # buffer must be dropped *now*, not at the first _connect,
        # or the child's own entries would be discarded with it
        store.save("verdict", ("child",), True)
        store.flush()
        assert store.load("verdict", ("child",)) == (True, True)
        hit, _ = store.load("verdict", ("parent",))
        assert not hit  # the parent flushes its own buffer itself


class TestIntegrityFuzz:
    """Fuzzed on-disk corruption: every mangled row must read as a
    miss (recompute), increment the read/integrity counters, and land
    in quarantine — never crash, never serve a stale verdict."""

    def _seeded_store(self, path, n=12):
        store = VerdictStore(path)
        values = {}
        for i in range(n):
            if i % 2:
                cache_name, value = "verdict", bool(i % 3)
            else:
                cache_name = "chase"
                value = Instance.build({"P": [(f"a{i}", Null(f"n{i}"))]})
            memo_key = (f"k{i}",)
            store.save(cache_name, memo_key, value)
            values[(cache_name, memo_key)] = value
        store.close()
        return values

    def _mangle(self, path, seed):
        """Corrupt a deterministic subset of rows four different ways;
        returns the number of rows touched."""
        import random
        import sqlite3

        rng = random.Random(seed)
        connection = sqlite3.connect(path)
        rows = connection.execute(
            "SELECT cache, key, value FROM entries ORDER BY cache, key"
        ).fetchall()
        victims = rng.sample(rows, k=max(4, len(rows) // 3))
        with connection:
            for which, (cache_name, digest, payload) in enumerate(victims):
                if which % 4 == 0 and len(payload) > 1:  # bit flip
                    pos = rng.randrange(len(payload))
                    flipped = (
                        payload[:pos]
                        + chr(ord(payload[pos]) ^ 1)
                        + payload[pos + 1:]
                    )
                    connection.execute(
                        "UPDATE entries SET value = ?"
                        " WHERE cache = ? AND key = ?",
                        (flipped, cache_name, digest),
                    )
                elif which % 4 == 1:  # truncation (torn write)
                    connection.execute(
                        "UPDATE entries SET value = substr(value, 1, 2)"
                        " WHERE cache = ? AND key = ?",
                        (cache_name, digest),
                    )
                elif which % 4 == 2:  # checksum scribbled over
                    connection.execute(
                        "UPDATE entries SET checksum = 'deadbeef'"
                        " WHERE cache = ? AND key = ?",
                        (cache_name, digest),
                    )
                else:  # engine stamp transplanted
                    connection.execute(
                        "UPDATE entries SET engine = 'other-engine'"
                        " WHERE cache = ? AND key = ?",
                        (cache_name, digest),
                    )
        connection.close()
        return len(victims)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fuzzed_corruption_degrades_to_recompute(self, tmp_path, seed):
        path = tmp_path / "s.sqlite"
        values = self._seeded_store(path)
        mangled = self._mangle(path, seed)
        store = VerdictStore(path)
        hits = corrupt = 0
        for (cache_name, memo_key), expected in values.items():
            hit, value = store.load(cache_name, memo_key)
            if hit:
                hits += 1
                assert value == expected  # never a wrong verdict
            else:
                corrupt += 1
        assert corrupt >= 1  # the fuzzer did real damage
        assert hits + corrupt == len(values)
        assert store.read_errors == corrupt
        assert store.integrity_errors == corrupt
        assert store.quarantine_count() == corrupt
        assert store.stats().counters()["store_integrity_errors"] == corrupt
        assert corrupt <= mangled  # 1-char verdicts make bit flips no-ops

        # Recompute-and-repopulate: the same keys store and serve again.
        for (cache_name, memo_key), expected in values.items():
            store.save(cache_name, memo_key, expected)
        store.flush()
        for (cache_name, memo_key), expected in values.items():
            assert store.load(cache_name, memo_key) == (True, expected)
        store.close()

    def test_quarantine_preserves_the_corrupt_row(self, tmp_path):
        import sqlite3

        path = tmp_path / "s.sqlite"
        store = VerdictStore(path)
        store.save("verdict", ("k",), True)
        store.close()
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("UPDATE entries SET checksum = 'scribble'")
        connection.close()
        reopened = VerdictStore(path)
        hit, _ = reopened.load("verdict", ("k",))
        assert not hit
        connection = sqlite3.connect(path)
        rows = connection.execute(
            "SELECT checksum, reason FROM quarantine"
        ).fetchall()
        remaining = connection.execute(
            "SELECT COUNT(*) FROM entries"
        ).fetchone()[0]
        connection.close()
        assert rows == [("scribble", "checksum mismatch")]
        assert remaining == 0  # moved, not copied

    def test_store_read_fault_point_is_a_counted_miss(self, tmp_path):
        from repro.engine import fault_scope

        engine_stats().reset()
        store = VerdictStore(tmp_path / "s.sqlite")
        store.save("verdict", ("k",), True)
        store.flush()
        with fault_scope("store.read:at=1"):
            hit, _ = store.load("verdict", ("k",))
            assert not hit
            assert store.read_errors == 1
            assert store.load("verdict", ("k",)) == (True, True)
        assert engine_stats().counter("fault_store_read") == 1

    def test_store_write_fault_point_rebuffers_entries(self, tmp_path):
        from repro.engine import fault_scope

        store = VerdictStore(tmp_path / "s.sqlite")
        store.save("verdict", ("k",), True)
        with fault_scope("store.write:at=1"):
            store.flush()
            assert store.write_errors == 1
            assert store.writes == 0
            store.flush()  # second attempt lands
            assert store.writes == 1
        assert store.load("verdict", ("k",)) == (True, True)


class TestStoreBackedCaches:
    def test_memory_miss_falls_through_and_promotes(self, tmp_path):
        with use_store(tmp_path / "s.sqlite") as store:
            verdict_cache.put(("k",), True)
            store.flush()
            verdict_cache.clear()
            hit, value = verdict_cache.get(("k",))
            assert hit and value is True
            assert store.hits == 1
            # promoted: the next get is a pure memory hit
            hit, _ = verdict_cache.get(("k",))
            assert hit and store.hits == 1

    def test_store_hit_matches_direct_computation(self, tmp_path):
        # A chase result served from disk must be an instance the
        # object backend could have produced directly: phrased in the
        # caller's terms, isomorphic to the direct computation.
        mapping = decomposition()

        def compute(instance):
            return instance.union(
                Instance.build({"P": [(Null("fresh"), "x", "y")]})
            )

        seed = Instance.build({"P": [(Null("a"), "s", "t")]})
        direct = compute(seed)
        with use_store(tmp_path / "s.sqlite") as store:
            first = cached_chase_result(mapping, seed, compute)
            store.flush()
            reset_all_caches()  # drop memory; disk survives
            calls = []
            result = cached_chase_result(
                mapping,
                Instance.build({"P": [(Null("b"), "s", "t")]}),
                lambda instance: calls.append(1) or compute(instance),
            )
            assert calls == []  # served from the store, not recomputed
            assert Null("b") in result.active_domain()
            assert canonical_key(result) == canonical_key(direct)
            assert canonical_key(result) == canonical_key(first)

    def test_use_store_restores_previous(self, tmp_path):
        assert active_store() is None
        with use_store(tmp_path / "s.sqlite"):
            assert active_store() is not None
            with use_store(None):
                assert active_store() is None
            assert active_store() is not None
        assert active_store() is None

    def test_checker_reports_identical_with_and_without_store(self, tmp_path):
        mapping, equivalence, universe = _projection_setup()
        baseline = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False,
        )
        reset_all_caches()
        with use_store(tmp_path / "s.sqlite") as store:
            cold = subset_property(
                mapping, equivalence, equivalence, universe,
                stop_at_first_violation=False,
            )
            store.flush()
        reset_all_caches()
        with use_store(tmp_path / "s.sqlite") as store:
            warm = subset_property(
                mapping, equivalence, equivalence, universe,
                stop_at_first_violation=False,
            )
            assert store.hits > 0  # the warm run really used the disk
        assert cold == baseline
        assert warm == baseline


class TestDefaultStore:
    """``REPRO_STORE`` never overrides a programmatic install."""

    @pytest.fixture(autouse=True)
    def _pristine(self, monkeypatch):
        import repro.engine.store as store_module

        monkeypatch.setattr(store_module, "_DEFAULT", None)
        monkeypatch.setattr(store_module, "_DEFAULT_PATH", None)
        uninstall_store()
        yield
        uninstall_store()

    def test_env_store_installed_when_nothing_pinned(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        store = default_store()
        assert store is not None and active_store() is store
        assert store.path == str(tmp_path / "env.sqlite")

    def test_no_env_no_install_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert default_store() is None
        assert active_store() is None

    def test_use_store_none_is_cold_under_ambient_env(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        with use_store(None):
            # the guaranteed-cold contract: default_store (called at
            # every checker entry) must not re-install the env store
            assert default_store() is None
            assert active_store() is None
        # outside the block the environment knob applies again
        assert default_store() is not None

    def test_programmatic_store_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        mine = VerdictStore(tmp_path / "mine.sqlite")
        with use_store(mine):
            assert default_store() is mine
            assert active_store() is mine

    def test_env_unset_removes_only_the_env_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env.sqlite"))
        assert default_store() is not None
        monkeypatch.delenv("REPRO_STORE")
        assert default_store() is None
        assert active_store() is None


class TestSharding:
    def test_shards_partition_every_universe(self):
        mapping, _, universe = _projection_setup()
        for shards in (2, 3, 4):
            owners = [shard_of_instance(inst, shards) for inst in universe]
            assert all(0 <= owner < shards for owner in owners)
            plan = plan_sweep("full", universe, mappings=(mapping,))
            kept = [
                inst
                for shard in range(shards)
                for inst in plan.shard(shards, shard).outer
            ]
            assert sorted(map(repr, kept)) == sorted(map(repr, plan.outer))

    def test_shard_assignment_is_orbit_invariant(self):
        # every member of an orbit lands on its representative's shard
        left = Instance.build({"P": [("a", "b", "c")]})
        renamed = Instance.build({"P": [("b", "a", "c")]})
        for shards in (2, 5):
            assert shard_of_instance(left, shards) == shard_of_instance(
                renamed, shards
            )

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_subset_reports_merge_byte_identically(self, shards):
        mapping, equivalence, universe = _projection_setup()
        serial = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, shards=1,
        )
        merged = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, shards=shards,
        )
        assert merged == serial

    def test_sharded_subset_orbit_mode_matches_serial(self):
        mapping, equivalence, universe = _projection_setup()
        serial = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, symmetry="orbits",
        )
        merged = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, symmetry="orbits", shards=3,
        )
        assert merged == serial

    def test_single_shard_reports_cover_disjoint_slices(self):
        mapping, equivalence, universe = _projection_setup()
        serial = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False,
        )
        slices = [
            subset_property(
                mapping, equivalence, equivalence, universe,
                stop_at_first_violation=False, shards=2, shard_id=which,
            )
            for which in (0, 1)
        ]
        assert sum(part.checked for part in slices) == serial.checked
        assert (
            sum(part.instances_checked for part in slices)
            == serial.instances_checked
        )

    def test_sharded_unique_solutions_matches_serial(self):
        mapping = decomposition()
        universe = list(
            power_instances(mapping.source, domain=("a", "b"), max_facts=2)
        )
        serial = unique_solutions_property(mapping, universe)
        merged = unique_solutions_property(mapping, universe, shards=3)
        assert tuple(serial) == tuple(merged)
        assert serial.instances_checked == merged.instances_checked

    def test_sharded_sweep_finds_the_same_violations(self):
        # a mapping known to violate unique solutions keeps its
        # violation list (same pairs, same order) under sharding
        by_name = {m.name: m for m in all_catalog_mappings()}
        mapping = by_name["Example4.5"]
        universe = list(
            power_instances(mapping.source, domain=("a", "b"), max_facts=2)
        )
        serial = unique_solutions_property(mapping, universe)
        merged = unique_solutions_property(mapping, universe, shards=2)
        assert serial.violators == merged.violators


class TestJournalFingerprint:
    def test_resume_requires_matching_fingerprint(self, tmp_path):
        path = str(tmp_path / "j.json")
        journal = CheckpointJournal(path)
        journal.record(
            "key", verified_upto=4, total=9, ok=True, violations=0,
            fingerprint="deadbeef", flush=True,
        )
        reloaded = CheckpointJournal(path)
        assert reloaded.resume_index("key", 9, "deadbeef") == 4
        assert reloaded.resume_index("key", 9, "different") == 0
        assert reloaded.resume_index("key", 8, "deadbeef") == 0

    def test_unfingerprinted_legacy_entry_never_matches(self, tmp_path):
        path = str(tmp_path / "j.json")
        journal = CheckpointJournal(path)
        journal.record(
            "key", verified_upto=4, total=9, ok=True, violations=0, flush=True
        )
        reloaded = CheckpointJournal(path)
        assert reloaded.resume_index("key", 9, "deadbeef") == 0
        assert reloaded.resume_index("key", 9) == 4  # legacy callers

    def test_stale_checkpoint_from_other_sweep_is_discarded(self, tmp_path):
        # The acceptance scenario: a journal recorded for mapping A is
        # offered to a sweep of mapping B whose universe happens to
        # have the same length.  The checker must restart, not resume.
        mapping_a, equivalence_a, universe = _projection_setup()
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        report_a = subset_property(
            mapping_a, equivalence_a, equivalence_a, universe,
            stop_at_first_violation=False, checkpoint=journal,
        )
        assert report_a.holds
        # same name, same universe length, different constraints
        mapping_b = decomposition()
        mapping_b = type(mapping_b)(
            name=mapping_a.name,
            source=mapping_b.source,
            target=mapping_b.target,
            dependencies=mapping_b.dependencies,
        )
        universe_b = list(
            power_instances(mapping_b.source, domain=("a", "b"), max_facts=2)
        )[: len(universe)]
        equivalence_b = SolutionEquivalence(mapping_b)
        resumed = CheckpointJournal(str(tmp_path / "j.json"))
        report_b = subset_property(
            mapping_b, equivalence_b, equivalence_b, universe_b,
            stop_at_first_violation=False, checkpoint=resumed,
        )
        # a resumed-from-stale sweep would have skipped instances and
        # checked fewer pairs; the fingerprint forces the full sweep
        fresh = subset_property(
            mapping_b, equivalence_b, equivalence_b, universe_b,
            stop_at_first_violation=False,
        )
        assert report_b == fresh

    def test_checker_resumes_its_own_journal(self, tmp_path):
        mapping, equivalence, universe = _projection_setup()
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        first = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, checkpoint=journal,
        )
        resumed_journal = CheckpointJournal(str(tmp_path / "j.json"))
        key = next(iter(resumed_journal._state))
        entry = resumed_journal._state[key]
        assert entry["complete"] and entry["fingerprint"]
        # a genuine re-run resumes past the completed sweep: the
        # report's local counters cover only post-resume work (zero)
        rerun = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False, checkpoint=resumed_journal,
        )
        assert rerun.holds == first.holds
        assert rerun.checked == 0


class TestJournalFlush:
    def test_failed_flush_counts_and_cleans_temp(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.json"), resume=False)
        journal.record(
            "k", verified_upto=1, total=2, ok=True, violations=0, flush=True
        )
        reset_dropped_flush_count()
        # make os.replace fail: the journal path becomes a directory
        os.unlink(tmp_path / "j.json")
        os.mkdir(tmp_path / "j.json")
        journal.record(
            "k", verified_upto=2, total=2, ok=True, violations=0, flush=True
        )
        assert dropped_flush_count() == 1
        assert glob.glob(str(tmp_path / ".repro-ckpt-*")) == []
        reset_dropped_flush_count()

    def test_engine_stats_surface_dropped_flushes(self, tmp_path):
        from repro.engine import engine_stats

        journal = CheckpointJournal(
            str(tmp_path / "missing" / "j.json"), resume=False
        )
        reset_dropped_flush_count()
        journal.flush()
        counters = engine_stats().counters()
        assert counters["checkpoint_dropped_flushes"] == 1
        assert "dropped" in engine_stats().render()
        reset_dropped_flush_count()


class TestShardLeases:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        assert journal.claim_shard("base", 0, 2, owner="alice")
        assert journal.claim_shard("base", 0, 2, owner="alice")  # re-entrant
        assert not journal.claim_shard("base", 0, 2, owner="bob")
        journal.release_shard("base", 0, 2, owner="bob")  # not the owner
        assert not journal.claim_shard("base", 0, 2, owner="bob")
        journal.release_shard("base", 0, 2, owner="alice")
        assert journal.claim_shard("base", 0, 2, owner="bob")

    def test_expired_lease_is_stolen(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        assert journal.claim_shard("base", 1, 2, owner="dead", ttl=0.0)
        assert journal.claim_shard("base", 1, 2, owner="thief")

    def test_steal_lost_when_lease_turns_live_after_read(
        self, tmp_path, monkeypatch
    ):
        # TOCTOU guard: a peer completes its own steal and writes a
        # fresh live lease between our expiry check and our removal.
        # The steal must detect this after the atomic rename, restore
        # the peer's lease, and lose — never destroy a live lease.
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        assert journal.claim_shard("base", 0, 2, owner="dead", ttl=0.0)
        real_read = CheckpointJournal._read_lease

        def raced_read(path):
            if ".steal-" in path:
                # what the rename actually captured: the peer's fresh
                # lease, written after our expiry check
                return {"owner": "peer", "expires": time.time() + 60.0}
            return real_read(path)

        monkeypatch.setattr(
            CheckpointJournal, "_read_lease", staticmethod(raced_read)
        )
        assert not journal.claim_shard("base", 0, 2, owner="thief")
        monkeypatch.setattr(
            CheckpointJournal, "_read_lease", staticmethod(real_read)
        )
        # the (restored) lease file is back in place, not unlinked
        lease_files = glob.glob(str(tmp_path / "j.json.lease-*"))
        assert len(lease_files) == 1 and ".steal-" not in lease_files[0]

    def test_claim_shards_runs_everything_without_journal(self):
        assert list(claim_shards(None, "base", 3, owner="solo")) == [0, 1, 2]

    def test_claim_shards_skips_completed_and_steals_expired(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        # shard 0: already complete in the journal
        journal.complete(
            shard_entry_key("base", 0, 3),
            total=5, ok=True, violations=0, fingerprint="fp",
        )
        # shard 1: leased by a dead worker whose lease expired
        assert journal.claim_shard("base", 1, 3, owner="dead", ttl=0.0)
        ran = []
        for shard in claim_shards(
            journal, "base", 3, owner="me", fingerprint="fp"
        ):
            ran.append(shard)
            journal.complete(
                shard_entry_key("base", shard, 3),
                total=5, ok=True, violations=0, fingerprint="fp",
            )
        assert ran == [1, 2]

    def test_claim_shards_returns_when_shards_cannot_complete(self, tmp_path):
        # A budget-tripped shard sweep records an *incomplete* journal
        # entry; since the exhausted budget is shared, re-claiming the
        # shard can never advance it.  The claim loop must yield each
        # shard at most once and then return — not spin forever.
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        ran = []
        claims = claim_shards(journal, "base", 2, owner="me", fingerprint="fp")
        for shard in itertools.islice(claims, 10):
            ran.append(shard)
            journal.record(
                shard_entry_key("base", shard, 2),
                verified_upto=1, total=5, ok=True, violations=0,
                fingerprint="fp", flush=True,
            )
        assert ran == [0, 1]  # each shard tried exactly once

    def test_claim_shards_still_finishes_mixed_outcomes(self, tmp_path):
        # one shard completes, one stalls: the loop returns after
        # trying both, with the completed shard recorded as such
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        ran = []
        claims = claim_shards(journal, "base", 2, owner="me", fingerprint="fp")
        for shard in itertools.islice(claims, 10):
            ran.append(shard)
            if shard == 0:
                journal.complete(
                    shard_entry_key("base", shard, 2),
                    total=5, ok=True, violations=0, fingerprint="fp",
                )
            else:
                journal.record(
                    shard_entry_key("base", shard, 2),
                    verified_upto=2, total=5, ok=True, violations=0,
                    fingerprint="fp", flush=True,
                )
        assert ran == [0, 1]
        assert journal.shard_states("base", 2, fingerprint="fp") == [
            "complete", "open",
        ]

    def test_sharded_sweep_with_exhausted_budget_reports_partial(
        self, tmp_path
    ):
        # End-to-end regression: shards>1, no shard_id, a journal, and
        # a budget that trips almost immediately must terminate with a
        # partial-coverage report like the serial path — not hang in
        # the claim loop.
        from repro.engine.budget import reset_coverage_events

        mapping, equivalence, universe = _projection_setup()
        try:
            report = subset_property(
                mapping, equivalence, equivalence, universe,
                stop_at_first_violation=False, shards=2, workers=1,
                checkpoint=CheckpointJournal(str(tmp_path / "j.json")),
                budget=Budget(max_instances=1),
            )
        finally:
            reset_coverage_events()
        assert report.coverage == "budget"
        assert report.instances_checked <= 1

    def test_two_workers_split_the_sweep(self, tmp_path):
        # the coordinator path end-to-end: worker A completes shard 0,
        # worker B (a fresh journal object on the same file) claims
        # only what is left and folds A's verdict in
        mapping, equivalence, universe = _projection_setup()
        serial = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False,
        )
        path = str(tmp_path / "j.json")
        shard0 = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False,
            checkpoint=CheckpointJournal(path), shards=2, shard_id=0,
        )
        merged = subset_property(
            mapping, equivalence, equivalence, universe,
            stop_at_first_violation=False,
            checkpoint=CheckpointJournal(path), shards=2,
        )
        assert merged.holds == serial.holds
        assert shard0.checked + merged.checked == serial.checked

    def test_lease_files_are_json(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.json"))
        assert journal.claim_shard("base", 0, 2, owner="alice", ttl=60.0)
        lease_files = glob.glob(str(tmp_path / "j.json.lease-*"))
        assert len(lease_files) == 1
        with open(lease_files[0], "r", encoding="utf-8") as handle:
            lease = json.load(handle)
        assert lease["owner"] == "alice"
        assert lease["expires"] > 0
