"""Unit tests for the symmetry engine: canonical forms, orbit
enumeration, sweep planning, and the soundness fallbacks."""

import pytest

from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Constant, Null
from repro.core.mapping import SchemaMapping
from repro.engine.symmetry import (
    SYMMETRY_FULL,
    SYMMETRY_ORBITS,
    canonical_instances,
    canonical_representative,
    count_orbits,
    decanonicalize,
    ground_canonical_form,
    ground_pair_key,
    mapping_permutation_invariant,
    orbit_count_estimate,
    orbit_reduce,
    orbit_transport,
    plan_sweep,
    resolve_symmetry,
)
from repro.errors import UniverseTooLarge
from repro.workloads.universes import (
    all_possible_facts,
    instance_universe,
    power_instances,
)


def _instance(*facts):
    return Instance.of(
        Atom(relation, tuple(Constant(value) for value in args))
        for relation, *args in facts
    )


SCHEMA = Schema.of({"R": 2})
DOMAIN = [Constant(f"c{index}") for index in range(3)]


class TestCanonicalForm:
    def test_permuted_instances_share_canonical_key(self):
        original = _instance(("R", "a", "b"), ("R", "b", "c"))
        renamed = original.substitute(
            {Constant("a"): Constant("z"), Constant("b"): Constant("a"),
             Constant("c"): Constant("q")}
        )
        assert ground_canonical_form(original).key() == (
            ground_canonical_form(renamed).key()
        )

    def test_distinct_structures_get_distinct_keys(self):
        path = _instance(("R", "a", "b"), ("R", "b", "c"))
        fork = _instance(("R", "a", "b"), ("R", "a", "c"))
        assert ground_canonical_form(path).key() != (
            ground_canonical_form(fork).key()
        )

    def test_forward_round_trips_through_decanonicalize(self):
        instance = _instance(("R", "x", "y"), ("R", "y", "x"))
        form = ground_canonical_form(instance)
        assert decanonicalize(form.canonical, form.forward) == instance

    def test_automorphism_count_on_symmetric_instance(self):
        # R(a,b) ∧ R(b,a): swapping a and b is the one non-trivial
        # automorphism, so |Aut| = 2 and the orbit under S_3 has
        # 3!/2 = 3 members.
        swap = _instance(("R", "a", "b"), ("R", "b", "a"))
        form = ground_canonical_form(swap)
        assert form.automorphisms == 2
        assert form.orbit_size(3) == 3

    def test_rejects_non_ground_instances(self):
        from repro.engine.symmetry import clear_symmetry_memos

        clear_symmetry_memos()
        with_null = Instance.of([Atom("R", (Constant("a"), Null(0)))])
        with pytest.raises(ValueError):
            ground_canonical_form(with_null)


class TestPairKey:
    def test_simultaneous_renaming_preserved(self):
        # (R(a,b), R(b,a)) and (R(x,y), R(y,x)) are related by one
        # simultaneous renaming; (R(a,b), R(a,b)) is not in that orbit
        # even though each component is singly isomorphic to R(a,b).
        pair_one = ground_pair_key(
            _instance(("R", "a", "b")), _instance(("R", "b", "a"))
        )
        pair_two = ground_pair_key(
            _instance(("R", "x", "y")), _instance(("R", "y", "x"))
        )
        pair_aligned = ground_pair_key(
            _instance(("R", "a", "b")), _instance(("R", "a", "b"))
        )
        assert pair_one == pair_two
        assert pair_one != pair_aligned


class TestOrbitEnumeration:
    def test_orbit_sizes_sum_to_full_universe(self):
        universe = instance_universe(SCHEMA, DOMAIN, max_facts=2)
        representatives = list(
            canonical_instances(SCHEMA, DOMAIN, max_facts=2)
        )
        assert sum(rep.orbit_size for rep in representatives) == len(universe)
        assert len(representatives) < len(universe)

    def test_representatives_are_canonical_members(self):
        for rep in canonical_instances(SCHEMA, DOMAIN, max_facts=2):
            assert canonical_representative(rep.instance, DOMAIN) == rep.instance

    def test_count_orbits_matches_enumeration(self):
        facts = all_possible_facts(SCHEMA, DOMAIN)
        exact = count_orbits(facts, DOMAIN, max_facts=2)
        representatives = list(
            canonical_instances(SCHEMA, DOMAIN, max_facts=2)
        )
        assert exact == len(representatives)

    def test_orbit_count_estimate_falls_back_to_lower_bound(self):
        big_domain = [Constant(f"c{index}") for index in range(9)]
        facts = all_possible_facts(SCHEMA, big_domain)
        count, exact = orbit_count_estimate(facts, big_domain, max_facts=1)
        assert not exact
        assert count >= 1

    def test_orbit_transport_carries_members_onto_each_other(self):
        source = _instance(("R", "a", "b"))
        target = _instance(("R", "b", "c"))
        renaming = orbit_transport(source, target)
        assert renaming is not None
        assert source.substitute(renaming) == target
        assert orbit_transport(source, _instance(("R", "a", "a"))) is None


class TestOrbitReduce:
    def test_weights_sum_and_cover_the_universe(self):
        universe = instance_universe(SCHEMA, DOMAIN, max_facts=2)
        classes = orbit_reduce(universe)
        assert classes is not None
        assert sum(cls.weight for cls in classes) == len(universe)
        keys = {
            ground_canonical_form(cls.representative).key() for cls in classes
        }
        assert len(keys) == len(classes)

    def test_non_closed_universe_is_rejected(self):
        universe = instance_universe(SCHEMA, DOMAIN, max_facts=1)
        # Drop one single-fact instance: the universe is no longer
        # closed under permutations of {c0, c1, c2}.
        assert orbit_reduce(list(universe)[:-1]) is None

    def test_non_ground_universe_is_rejected(self):
        with_null = Instance.of([Atom("R", (Constant("a"), Null(0)))])
        assert orbit_reduce([with_null]) is None


class TestPlanSweep:
    def _universe(self):
        return instance_universe(SCHEMA, DOMAIN, max_facts=1)

    def test_full_mode_plans_full_sweep(self):
        plan = plan_sweep("full", self._universe())
        assert plan.mode == SYMMETRY_FULL
        assert not plan.reduced
        assert not plan.ground_keys
        assert plan.weight_of(0) == 1

    def test_orbit_mode_reduces_closed_universe(self):
        universe = self._universe()
        plan = plan_sweep("orbits", universe)
        assert plan.mode == SYMMETRY_ORBITS
        assert plan.reduced and plan.ground_keys
        assert sum(plan.weights) == len(universe)
        assert plan.covered_upto(len(plan.outer)) == len(universe)

    def test_literal_constant_mapping_vetoes_reduction(self):
        constant_mapping = SchemaMapping.from_text(
            Schema.of({"R": 2}),
            Schema.of({"S": 2}),
            "R(x, y) -> S(x, 1)",
            name="Pinned",
        )
        assert not mapping_permutation_invariant(constant_mapping)
        plan = plan_sweep("orbits", self._universe(), mappings=(constant_mapping,))
        assert plan.mode == SYMMETRY_FULL
        assert not plan.reduced and not plan.ground_keys

    def test_non_closed_universe_falls_back_but_keeps_ground_keys(self):
        universe = list(self._universe())[:-1]
        plan = plan_sweep("orbits", universe)
        assert plan.mode == SYMMETRY_FULL
        assert not plan.reduced
        assert plan.ground_keys  # cache keys stay sound per-instance

    def test_extra_invariant_veto(self):
        plan = plan_sweep("orbits", self._universe(), extra_invariant=False)
        assert plan.mode == SYMMETRY_FULL and not plan.ground_keys

    def test_resolve_rejects_unknown_modes(self):
        with pytest.raises(ValueError):
            resolve_symmetry("sideways")


class TestUniverseTooLargeHint:
    def test_error_reports_orbit_reduced_estimate(self):
        with pytest.raises(UniverseTooLarge) as excinfo:
            list(power_instances(SCHEMA, DOMAIN, max_facts=3, cap=10))
        message = str(excinfo.value)
        assert "representatives" in message
        facts = all_possible_facts(SCHEMA, DOMAIN)
        exact = count_orbits(facts, DOMAIN, max_facts=3)
        assert str(exact) in message
