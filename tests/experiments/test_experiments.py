"""Integration tests: every experiment must pass end-to-end.

These are the repository's reproduction gate: each experiment compares
the library's behaviour against what the paper states, so a failure
here means the reproduction has drifted.
"""

import pytest

from repro.experiments import all_experiment_ids, run_experiment
from repro.experiments.registry import get_experiment


@pytest.mark.parametrize("experiment_id", all_experiment_ids())
def test_experiment_passes(experiment_id):
    report = run_experiment(experiment_id)
    failed = [check for check in report.checks if not check.passed]
    assert not failed, "\n".join(check.render() for check in failed)


def test_registry_is_complete():
    assert all_experiment_ids() == tuple(f"E{i}" for i in range(1, 15))


def test_lookup_is_case_insensitive():
    assert get_experiment("e11") is get_experiment("E11")


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("E99")


def test_reports_render():
    report = run_experiment("E11")
    rendered = report.render()
    assert "Figure 1" in rendered
    assert "PASS" in rendered


def test_e13_records_comparison_data():
    report = run_experiment("E13")
    assert "Example5.4" in report.data
    comparison = report.data["Example5.4"]
    assert comparison["inverse_deps"] == 2
    assert comparison["quasi_uses_existentials"] is True
