"""Unit tests for the complete Prop 3.12 refuter."""

from repro.catalog import prop_3_12
from repro.core import data_exchange_equivalent, solutions_contained
from repro.experiments.prop312_search import search_violation


class TestSearch:
    def test_no_violation_with_two_constants(self):
        assert search_violation(domain_size=2) is None

    def test_violation_with_three_constants(self):
        witness = search_violation(domain_size=3)
        assert witness is not None
        assert witness.domain_size == 3

    def test_witness_is_the_known_pair(self):
        witness = search_violation(domain_size=3)
        assert len(witness.left) == 1  # the self-loop E(0,0)
        assert len(witness.right) == 4

    def test_witness_certifies_containment_without_equivalence(self):
        mapping = prop_3_12()
        witness = search_violation(domain_size=3)
        assert solutions_contained(mapping, witness.right, witness.left)
        assert not data_exchange_equivalent(mapping, witness.left, witness.right)

    def test_witness_instances_are_ground_edge_sets(self):
        witness = search_violation(domain_size=3)
        for instance in (witness.left, witness.right):
            assert instance.is_ground()
            assert set(instance.relations()) <= {"E"}
