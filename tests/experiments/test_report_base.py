"""Unit tests for the experiment report machinery."""

from repro.experiments.base import Check, ExperimentReport, ReportBuilder


class TestCheck:
    def test_render_pass_and_fail(self):
        assert "[PASS]" in Check("ok", True).render()
        assert "[FAIL]" in Check("bad", False).render()

    def test_detail_appended(self):
        assert "why" in Check("ok", True, detail="why").render()


class TestReportBuilder:
    def test_builds_report_with_checks_and_lines(self):
        builder = ReportBuilder("EX", "Title", "Artifact")
        builder.line("context")
        builder.lines("a\nb")
        assert builder.check("first", True)
        assert not builder.check("second", False, detail="boom")
        builder.record("key", 42)
        report = builder.build()
        assert report.experiment_id == "EX"
        assert report.lines == ("context", "a", "b")
        assert len(report.checks) == 2
        assert report.data == {"key": 42}

    def test_passed_requires_all_checks(self):
        builder = ReportBuilder("EX", "Title", "Artifact")
        builder.check("good", True)
        assert builder.build().passed
        builder.check("bad", False)
        assert not builder.build().passed

    def test_check_coerces_truthiness(self):
        builder = ReportBuilder("EX", "Title", "Artifact")
        builder.check("truthy", [1])
        report = builder.build()
        assert report.checks[0].passed is True


class TestRendering:
    def test_render_contains_verdict_and_counts(self):
        builder = ReportBuilder("EX", "Title", "Artifact")
        builder.check("one", True)
        builder.check("two", False)
        rendered = builder.build().render()
        assert "SOME CHECKS FAILED" in rendered
        assert "(1/2)" in rendered

    def test_render_all_pass(self):
        builder = ReportBuilder("EX", "Title", "Artifact")
        builder.check("one", True)
        assert "ALL CHECKS PASS" in builder.build().render()
