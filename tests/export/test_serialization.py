"""Unit tests for JSON serialization round trips."""

import json

import pytest

from repro.catalog import all_catalog_mappings, figure_1_instance
from repro.core.quasi_inverse import quasi_inverse
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Null, Variable
from repro.dependencies.parser import parse_dependency
from repro.export.serialization import (
    SerializationError,
    dependency_from_json,
    dependency_to_json,
    instance_from_json,
    instance_to_json,
    mapping_from_json,
    mapping_to_json,
    schema_from_json,
    schema_to_json,
)


class TestRoundTrips:
    def test_schema(self):
        schema = Schema.of({"P": 2, "Q": 0})
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_ground_instance(self):
        instance = figure_1_instance()
        assert instance_from_json(instance_to_json(instance)) == instance

    def test_instance_with_nulls_and_integers(self):
        instance = Instance.of(
            [atom("P", 1, Null("n"), "a"), atom("Q", Variable("x"))]
        )
        assert instance_from_json(instance_to_json(instance)) == instance

    def test_dependency_with_constraints(self):
        dep = parse_dependency(
            "S(x1, x2, y) & Constant(x1) & x1 != x2 -> P(x1, x2, z) | U(x1)"
        )
        assert dependency_from_json(dependency_to_json(dep)) == dep

    def test_every_catalog_mapping(self):
        for mapping in all_catalog_mappings():
            assert mapping_from_json(mapping_to_json(mapping)) == mapping

    def test_algorithm_outputs_round_trip(self):
        from repro.catalog import example_4_5

        reverse = quasi_inverse(example_4_5())
        assert mapping_from_json(mapping_to_json(reverse)) == reverse

    def test_payload_is_json_compatible(self):
        payload = mapping_to_json(all_catalog_mappings()[0])
        assert mapping_from_json(json.loads(json.dumps(payload))) == (
            all_catalog_mappings()[0]
        )

    def test_name_preserved(self):
        mapping = all_catalog_mappings()[0]
        assert mapping_from_json(mapping_to_json(mapping)).name == mapping.name


class TestErrors:
    def test_malformed_schema(self):
        with pytest.raises(SerializationError):
            schema_from_json({"nope": 1})

    def test_malformed_term_kind(self):
        with pytest.raises(SerializationError):
            instance_from_json(
                {"facts": [{"relation": "P", "args": [{"kind": "weird"}]}]}
            )

    def test_malformed_constant_value(self):
        with pytest.raises(SerializationError):
            instance_from_json(
                {
                    "facts": [
                        {
                            "relation": "P",
                            "args": [{"kind": "constant", "value": 1.5}],
                        }
                    ]
                }
            )

    def test_malformed_dependency(self):
        with pytest.raises(SerializationError):
            dependency_from_json({"disjuncts": []})

    def test_malformed_mapping(self):
        with pytest.raises(SerializationError):
            mapping_from_json({"source": {}})
