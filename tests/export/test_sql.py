"""Unit tests for the SQL exporter."""

import pytest

from repro.catalog import decomposition, thm_4_9, union_mapping
from repro.datamodel.atoms import atom
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Null
from repro.dependencies.parser import parse_dependency
from repro.dataexchange.queries import parse_query
from repro.export.sql import (
    SqlExportError,
    cq_to_select,
    instance_to_inserts,
    mapping_to_sql,
    schema_to_ddl,
    tgd_to_insert_select,
)


class TestDdl:
    def test_create_tables(self):
        ddl = schema_to_ddl(Schema.of({"P": 2, "Q": 1}))
        assert "CREATE TABLE p (c1 TEXT, c2 TEXT);" in ddl
        assert "CREATE TABLE q (c1 TEXT);" in ddl

    def test_custom_type(self):
        ddl = schema_to_ddl(Schema.of({"P": 1}), text_type="VARCHAR(64)")
        assert "VARCHAR(64)" in ddl

    def test_odd_names_are_quoted(self):
        ddl = schema_to_ddl(Schema.of({"My Table": 1}))
        assert '"my table"' in ddl.lower()

    def test_case_collision_rejected(self):
        with pytest.raises(SqlExportError, match="both render"):
            schema_to_ddl(Schema.of({"R": 1, "r": 2}))


class TestIdentifierCollisions:
    def test_insert_collision_rejected(self):
        instance = Instance.build({"R": [("a",)], "r": [("b",)]})
        with pytest.raises(SqlExportError, match="both render"):
            instance_to_inserts(instance)

    def test_dependency_collision_rejected(self):
        with pytest.raises(SqlExportError, match="both render"):
            tgd_to_insert_select(parse_dependency("P(x) -> p(x)"))

    def test_query_collision_rejected(self):
        with pytest.raises(SqlExportError, match="both render"):
            cq_to_select(parse_query("q(x) :- P(x), p(x)"))

    def test_mapping_source_target_collision_rejected(self):
        from repro.core.mapping import SchemaMapping

        mapping = SchemaMapping.from_text(
            Schema.of({"P": 1}),
            Schema.of({"p": 1}),
            "P(x) -> p(x)",
            name="collide",
        )
        with pytest.raises(SqlExportError, match="both render"):
            mapping_to_sql(mapping)


class TestInserts:
    def test_string_and_integer_literals(self):
        # integers are quoted too: the DDL declares TEXT columns, so an
        # unquoted 3 would store as its string twin anyway and collide
        # with Constant("3")
        inserts = instance_to_inserts(Instance.build({"P": [("a", 3)]}))
        assert inserts == "INSERT INTO p VALUES ('a', '3');"

    def test_quote_escaping(self):
        inserts = instance_to_inserts(Instance.build({"P": [("o'brien",)]}))
        assert "'o''brien'" in inserts

    def test_nulls_rejected_by_default(self):
        instance = Instance.of([atom("P", Null("n"))])
        with pytest.raises(SqlExportError):
            instance_to_inserts(instance)
        assert "NULL" in instance_to_inserts(instance, allow_nulls=True)

    def test_sorted_deterministic_output(self):
        instance = Instance.build({"P": [("b",), ("a",)]})
        first = instance_to_inserts(instance)
        assert first.index("'a'") < first.index("'b'")


class TestInsertSelect:
    def test_projection_tgd(self):
        statement = tgd_to_insert_select(parse_dependency("P(x, y) -> Q(x)"))
        assert statement == "INSERT INTO q SELECT DISTINCT t0.c1 FROM p AS t0;"

    def test_join_premise(self):
        statement = tgd_to_insert_select(
            parse_dependency("E(x, z) & E(z, y) -> F(x, y)")
        )
        assert "FROM e AS t0, e AS t1" in statement
        assert "t0.c2 = t1.c1" in statement

    def test_repeated_variable_in_one_atom(self):
        statement = tgd_to_insert_select(parse_dependency("P(x, x) -> Q(x)"))
        assert "t0.c1 = t0.c2" in statement

    def test_inequality_compiles_to_neq(self):
        statement = tgd_to_insert_select(
            parse_dependency("P(x, y) & x != y -> Q(x)")
        )
        assert "t0.c1 <> t0.c2" in statement

    def test_constant_guard_is_a_noop(self):
        statement = tgd_to_insert_select(
            parse_dependency("P(x, y) & Constant(x) -> Q(x)")
        )
        assert "Constant" not in statement

    def test_multiple_conclusions_give_multiple_inserts(self):
        statement = tgd_to_insert_select(
            parse_dependency("P(x, y, z) -> Q(x, y) & R(y, z)")
        )
        assert statement.count("INSERT INTO") == 2

    def test_existential_conclusion_rejected(self):
        with pytest.raises(SqlExportError):
            tgd_to_insert_select(parse_dependency("P(x) -> Q(x, y)"))

    def test_disjunctive_conclusion_rejected(self):
        with pytest.raises(SqlExportError):
            tgd_to_insert_select(parse_dependency("S(x) -> P(x) | Q(x)"))


class TestMappingAndQueries:
    def test_full_mapping_renders_completely(self):
        sql = mapping_to_sql(thm_4_9())
        assert sql.count("CREATE TABLE") == 5
        assert sql.count("INSERT INTO") == 4

    def test_decomposition_renders(self):
        sql = mapping_to_sql(decomposition())
        assert "INSERT INTO q" in sql and "INSERT INTO r" in sql

    def test_union_mapping_renders(self):
        sql = mapping_to_sql(union_mapping())
        assert sql.count("INSERT INTO s ") == 2

    def test_cq_to_select(self):
        statement = cq_to_select(parse_query("q(x, y) :- P(x, z), Q(z, y)"))
        assert statement.startswith("SELECT DISTINCT t0.c1, t1.c2")
        assert "t0.c2 = t1.c1" in statement

    def test_boolean_query_selects_one(self):
        statement = cq_to_select(parse_query("q() :- P(x)"))
        assert statement == "SELECT DISTINCT 1 FROM p AS t0;"


class TestAgainstSqlite:
    """End-to-end: the exported SQL computes the same facts as the chase."""

    def test_exchange_matches_sqlite(self):
        import sqlite3

        mapping = decomposition()
        source = Instance.build(
            {"P": [("a", "b", "c"), ("a'", "b", "c'"), ("d", "e", "f")]}
        )
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            schema_to_ddl(mapping.source)
            + "\n"
            + schema_to_ddl(mapping.target)
            + "\n"
            + instance_to_inserts(source)
            + "\n"
            + "\n".join(
                tgd_to_insert_select(dep) for dep in mapping.dependencies
            )
        )
        rows = set(connection.execute("SELECT * FROM q")) | {
            ("R",) + row for row in connection.execute("SELECT * FROM r")
        }
        from repro.core.mapping import universal_solution

        chased = universal_solution(mapping, source)
        expected = {
            tuple(str(a.value) for a in fact.args)
            for fact in chased.facts_for("Q")
        } | {
            ("R",) + tuple(str(a.value) for a in fact.args)
            for fact in chased.facts_for("R")
        }
        assert rows == expected

    def test_cq_matches_naive_evaluation(self):
        import sqlite3

        from repro.dataexchange.queries import evaluate

        instance = Instance.build(
            {"P": [("a", "b"), ("b", "c"), ("c", "c")]}
        )
        query = parse_query("q(x, y) :- P(x, z), P(z, y)")
        connection = sqlite3.connect(":memory:")
        connection.executescript(
            schema_to_ddl(Schema.of({"P": 2})) + "\n" + instance_to_inserts(instance)
        )
        rows = set(connection.execute(cq_to_select(query).rstrip(";")))
        expected = {
            tuple(str(v.value) for v in answer)
            for answer in evaluate(query, instance)
        }
        assert rows == expected
