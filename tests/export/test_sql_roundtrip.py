"""Executed round-trip: the exported SQL script IS the data exchange.

For every full, disjunction-free catalog mapping the script
:func:`repro.export.sql.mapping_to_sql` renders is run, verbatim,
through stdlib ``sqlite3``; the rows the target tables then hold must
equal the engine chase's universal solution.  This is the strongest
check the exporter admits: not that the SQL *looks* right, but that a
real database executing it computes the same instance the chase does.
"""

import sqlite3

import pytest

from repro.catalog import all_catalog_mappings
from repro.core.mapping import universal_solution
from repro.export.sql import (
    SqlExportError,
    _identifier,
    instance_to_inserts,
    mapping_to_sql,
)
from repro.workloads import random_ground_instance


def _exportable(mapping) -> bool:
    if not mapping.is_full():
        return False
    if any(not dep.is_disjunction_free() for dep in mapping.dependencies):
        return False
    if any(arity == 0 for _, arity in mapping.source.relations):
        return False
    if any(arity == 0 for _, arity in mapping.target.relations):
        return False
    try:
        mapping_to_sql(mapping)
    except SqlExportError:
        return False
    return True


FULL_MAPPINGS = [m for m in all_catalog_mappings() if _exportable(m)]


def test_catalog_has_exportable_mappings():
    # the round-trip sweep below must not be vacuous
    assert len(FULL_MAPPINGS) >= 2


@pytest.mark.parametrize(
    "mapping", FULL_MAPPINGS, ids=[m.name for m in FULL_MAPPINGS]
)
@pytest.mark.parametrize("seed", [0, 7])
def test_mapping_script_round_trips(mapping, seed):
    source = random_ground_instance(
        mapping.source, seed=seed, n_facts=4, domain_size=3
    )
    script = mapping_to_sql(mapping)
    # run the script the way an ETL would: DDL, then the source load,
    # then the mapping's INSERT...SELECT statements
    ddl, marker, transforms = script.partition("-- mapping\n")
    assert marker, "mapping_to_sql no longer emits the '-- mapping' marker"
    connection = sqlite3.connect(":memory:")
    connection.executescript(ddl)
    connection.executescript(instance_to_inserts(source))
    connection.executescript(transforms)
    chased = universal_solution(mapping, source)
    for relation, arity in mapping.target.relations:
        table = _identifier(relation)
        rows = set(connection.execute(f"SELECT * FROM {table}"))
        expected = {
            tuple(str(arg.value) for arg in fact.args)
            for fact in chased.facts_for(relation)
            if fact.arity == arity
        }
        assert rows == expected, (
            f"{mapping.name}: SQL table {table} diverges from the "
            "chased universal solution"
        )
    connection.close()
