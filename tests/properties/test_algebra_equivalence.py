"""Rewrite rules and evaluation plans are invisible (hypothesis).

The algebra planner promises that ``normalize`` and the strategy
choice (materialize vs staged vs membership) never change what a
sweep reports.  These properties draw random expressions over the
fan-in/chain scenario family — with rename, restrict, and union
wrappers thrown in — plus random source instances, and assert that

* the chase of the normalized expression agrees with the chase of
  the original, fact-for-fact;
* staged pipelines compute the same universal solutions as the
  materialized composition;
* ``expression_membership`` agrees with a materialized
  ``is_solution`` model check; and
* ``check_expression`` renders byte-identical reports across plan
  modes × backends × worker counts on fixed examples.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.evaluate import (
    expression_membership,
    materialize,
    staged_mapping,
)
from repro.algebra.expr import (
    Compose,
    MappingAtom,
    Rename,
    Restrict,
    UnionOf,
    parse_expression,
)
from repro.algebra.rewrite import normalize
from repro.algebra.scenarios import (
    chain_join_mapping,
    chain_join_with_dead_branch,
    fan_in_mapping,
)
from repro.algebra.sweeps import check_expression
from repro.core.mapping import is_solution, universal_solution
from repro.engine import fork_available, reset_all_caches
from repro.workloads import power_instances, random_ground_instance

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WIDTH = 2  # keep the MinGen leg cheap; blow-up behaviour is benched, not fuzzed


def _base_expression(tail_kind: str) -> Compose:
    tail = (
        chain_join_with_dead_branch(WIDTH)
        if tail_kind == "dead"
        else chain_join_mapping(WIDTH)
    )
    return Compose(
        first=MappingAtom(mapping=fan_in_mapping(WIDTH)),
        second=MappingAtom(mapping=tail),
    )


def _wrap(expr, wrapper: str):
    if wrapper == "rename":
        return Rename(child=expr, renaming=(("W", "Result"),))
    if wrapper == "restrict":
        return Restrict(child=expr, relations=("W",))
    if wrapper == "union":
        return UnionOf(left=expr, right=expr)
    return expr


expressions = st.builds(
    lambda tail, wrapper: _wrap(_base_expression(tail), wrapper),
    st.sampled_from(["chain", "dead"]),
    st.sampled_from(["none", "rename", "restrict", "union"]),
)


class TestNormalizePreservesChase:
    @SLOW
    @given(expr=expressions, seed=st.integers(min_value=0, max_value=10_000))
    def test_normalized_chase_is_identical(self, expr, seed):
        normalized, _ = normalize(expr)
        source = random_ground_instance(
            expr.source, seed, n_facts=4, domain_size=3
        )
        assert (
            universal_solution(materialize(expr), source).facts
            == universal_solution(materialize(normalized), source).facts
        )

    @SLOW
    @given(expr=expressions, seed=st.integers(min_value=0, max_value=10_000))
    def test_staged_chase_matches_materialized(self, expr, seed):
        normalized, _ = normalize(expr)
        staged = staged_mapping(normalized)
        if staged is None:
            return
        source = random_ground_instance(
            expr.source, seed, n_facts=4, domain_size=3
        )
        assert (
            universal_solution(staged, source).facts
            == universal_solution(materialize(normalized), source).facts
        )


class TestMembershipMatchesModelCheck:
    @SLOW
    @given(
        left_seed=st.integers(min_value=0, max_value=500),
        right_seed=st.integers(min_value=0, max_value=500),
    )
    def test_membership_agrees_on_random_pairs(self, left_seed, right_seed):
        expr = parse_expression("compose(Decomposition, Decomposition')")
        concrete = materialize(expr)
        left = random_ground_instance(
            expr.source, left_seed, n_facts=2, domain_size=2
        )
        right = random_ground_instance(
            expr.target, right_seed, n_facts=2, domain_size=2
        )
        assert expression_membership(expr, left, right) == is_solution(
            concrete, left, right
        )


def _worker_counts():
    return (None, 2) if fork_available() else (None,)


class TestPlanMatrixByteIdentity:
    """Fixed-example matrix: plan × backend × workers, one rendering."""

    @pytest.mark.parametrize("kind", ["unique", "subset"])
    def test_sweep_matrix(self, kind):
        expr = _wrap(_base_expression("dead"), "none")
        renderings = set()
        for plan in ("materialize", "auto"):
            for backend in ("object", "kernel", "sql"):
                for workers in _worker_counts():
                    reset_all_caches()
                    report = check_expression(
                        expr,
                        kind,
                        plan=plan,
                        backend=backend,
                        workers=workers,
                    )
                    renderings.add(report.render())
        assert len(renderings) == 1

    def test_inverse_matrix(self):
        renderings = set()
        for plan in ("materialize", "membership", "auto"):
            for backend in ("object", "kernel"):
                reset_all_caches()
                report = check_expression(
                    "Projection'",
                    "inverse",
                    reverse="Projection",
                    plan=plan,
                    backend=backend,
                )
                renderings.add(report.render())
        assert len(renderings) == 1

    def test_verdicts_track_the_underlying_property(self):
        # sanity: the matrix above is not vacuously identical — the
        # report embeds the actual verdict and universe size
        expr = _base_expression("chain")
        report = check_expression(expr, "unique", plan="auto")
        assert "unique solutions" in report.render()
        universe = list(power_instances(expr.source, ("a", "b"), max_facts=1))
        assert f"{len(universe)} instances" in report.render()
