"""Object vs compiled-kernel vs SQL backend equivalence (hypothesis).

The accelerated backends must be invisible: every search and every
verdict agrees with the object backend not just on the *set* of
results but on their *order* (the chase picks the first match, so
order divergence would change downstream instances).  These properties
drive all three backends over randomly drawn premises — including
``Constant(x)`` conjuncts and inequalities — targets with nulls, and
random LAV mappings (whose tgds include *existential* conclusions),
asserting byte-identical answers.

The SQL backend normally routes operands below
``REPRO_SQL_MIN_FACTS`` facts to the kernel; the module fixture pins
the threshold to 0 so these tiny hypothesis instances exercise the
actual SQL plans.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.homomorphism import (
    all_homomorphisms,
    find_homomorphism,
    instance_homomorphism,
)
from repro.chase.standard import chase
from repro.core.mapping import (
    data_exchange_equivalent,
    solutions_contained,
    universal_solution,
)
from repro.datamodel.atoms import Atom
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant, Null, Variable
from repro.engine import reset_all_caches, use_backend
from repro.workloads import random_ground_instance, random_lav_mapping

ACCELERATED = ("kernel", "sql")


@pytest.fixture(scope="module", autouse=True)
def _force_sql_path():
    """Pin the SQL small-operand threshold to 0 for this module."""
    previous = os.environ.get("REPRO_SQL_MIN_FACTS")
    os.environ["REPRO_SQL_MIN_FACTS"] = "0"
    reset_all_caches()
    yield
    if previous is None:
        os.environ.pop("REPRO_SQL_MIN_FACTS", None)
    else:
        os.environ["REPRO_SQL_MIN_FACTS"] = previous
    reset_all_caches()

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
VARIABLES = (X, Y, Z)

_TARGET_TERMS = (
    Constant("a"),
    Constant("b"),
    Constant("c"),
    Null("n0"),
    Null("n1"),
)

target_instances = st.builds(
    lambda pairs, singles: Instance.build({"P": pairs, "Q": singles}),
    st.lists(
        st.tuples(st.sampled_from(_TARGET_TERMS), st.sampled_from(_TARGET_TERMS)),
        max_size=5,
    ),
    st.lists(st.tuples(st.sampled_from(_TARGET_TERMS)), max_size=3),
)

_PREMISE_TERMS = VARIABLES + (Constant("a"), Constant("b"))

premise_atoms = st.lists(
    st.one_of(
        st.builds(
            lambda left, right: Atom("P", (left, right)),
            st.sampled_from(_PREMISE_TERMS),
            st.sampled_from(_PREMISE_TERMS),
        ),
        st.builds(
            lambda arg: Atom("Q", (arg,)), st.sampled_from(_PREMISE_TERMS)
        ),
    ),
    min_size=1,
    max_size=3,
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _constraints(premise, constant_mask, inequality_mask):
    """Constraint sets drawn over the variables the premise mentions."""
    occurring = sorted(
        {arg for atom in premise for arg in atom.args if isinstance(arg, Variable)}
    )
    constant_vars = frozenset(
        variable
        for index, variable in enumerate(occurring)
        if constant_mask & (1 << index)
    )
    pairs = [
        (left, right)
        for i, left in enumerate(occurring)
        for right in occurring[i + 1 :]
    ]
    inequalities = frozenset(
        pair for index, pair in enumerate(pairs) if inequality_mask & (1 << index)
    )
    return constant_vars, inequalities


class TestHomomorphismSearchEquivalence:
    @SLOW
    @given(
        premise=premise_atoms,
        target=target_instances,
        constant_mask=st.integers(min_value=0, max_value=7),
        inequality_mask=st.integers(min_value=0, max_value=7),
    )
    def test_all_homomorphisms_identical_results_and_order(
        self, premise, target, constant_mask, inequality_mask
    ):
        constant_vars, inequalities = _constraints(
            premise, constant_mask, inequality_mask
        )
        with use_backend("object"):
            expected = list(
                all_homomorphisms(
                    premise,
                    target,
                    constant_vars=constant_vars,
                    inequalities=inequalities,
                )
            )
        for backend in ACCELERATED:
            with use_backend(backend):
                actual = list(
                    all_homomorphisms(
                        premise,
                        target,
                        constant_vars=constant_vars,
                        inequalities=inequalities,
                    )
                )
            assert actual == expected, backend

    @SLOW
    @given(
        premise=premise_atoms,
        target=target_instances,
        constant_mask=st.integers(min_value=0, max_value=7),
        inequality_mask=st.integers(min_value=0, max_value=7),
    )
    def test_find_homomorphism_identical_first_match(
        self, premise, target, constant_mask, inequality_mask
    ):
        constant_vars, inequalities = _constraints(
            premise, constant_mask, inequality_mask
        )
        with use_backend("object"):
            expected = find_homomorphism(
                premise,
                target,
                constant_vars=constant_vars,
                inequalities=inequalities,
            )
        for backend in ACCELERATED:
            with use_backend(backend):
                actual = find_homomorphism(
                    premise,
                    target,
                    constant_vars=constant_vars,
                    inequalities=inequalities,
                )
            assert actual == expected, backend

    @SLOW
    @given(source=target_instances, target=target_instances)
    def test_instance_homomorphism_identical(self, source, target):
        with use_backend("object"):
            expected = instance_homomorphism(source, target)
        for backend in ACCELERATED:
            with use_backend(backend):
                actual = instance_homomorphism(source, target)
            assert actual == expected, backend


lav_mappings = st.builds(
    random_lav_mapping,
    st.integers(min_value=0, max_value=10_000),
    n_source=st.integers(min_value=1, max_value=2),
    n_target=st.integers(min_value=1, max_value=2),
    max_arity=st.just(2),
    n_tgds=st.integers(min_value=1, max_value=2),
)


class TestVerdictEquivalence:
    @SLOW
    @given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=500))
    def test_universal_solution_byte_identical(self, mapping, seed):
        source = random_ground_instance(
            mapping.source, seed=seed, n_facts=3, domain_size=2
        )
        reset_all_caches()
        with use_backend("object"):
            expected = universal_solution(mapping, source)
        for backend in ACCELERATED:
            # fresh caches per backend: verdict/chase memos are not
            # backend-keyed, and a cache hit would mask a divergence
            reset_all_caches()
            with use_backend(backend):
                actual = universal_solution(mapping, source)
            assert actual.facts == expected.facts, backend

    @SLOW
    @given(
        mapping=lav_mappings,
        seed_one=st.integers(min_value=0, max_value=500),
        seed_two=st.integers(min_value=0, max_value=500),
    )
    def test_verdicts_identical(self, mapping, seed_one, seed_two):
        left = random_ground_instance(
            mapping.source, seed=seed_one, n_facts=2, domain_size=2
        )
        right = random_ground_instance(
            mapping.source, seed=seed_two, n_facts=2, domain_size=2
        )
        reset_all_caches()
        with use_backend("object"):
            contained = solutions_contained(mapping, left, right)
            equivalent = data_exchange_equivalent(mapping, left, right)
        for backend in ACCELERATED:
            reset_all_caches()
            with use_backend(backend):
                assert (
                    solutions_contained(mapping, left, right) == contained
                ), backend
                assert (
                    data_exchange_equivalent(mapping, left, right)
                    == equivalent
                ), backend

    @SLOW
    @given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=500))
    def test_chase_trace_byte_identical(self, mapping, seed):
        """Traced chases — existential tgds invent fresh nulls — agree
        on the final facts, the produced delta, and every step."""
        source = random_ground_instance(
            mapping.source, seed=seed, n_facts=3, domain_size=2
        )
        reset_all_caches()
        with use_backend("object"):
            expected = chase(source, mapping.dependencies)
        for backend in ACCELERATED:
            reset_all_caches()
            with use_backend(backend):
                actual = chase(source, mapping.dependencies)
            assert actual.instance.facts == expected.instance.facts, backend
            assert actual.produced.facts == expected.produced.facts, backend
            assert actual.steps == expected.steps, backend
