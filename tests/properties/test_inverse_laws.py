"""Property-based tests for the inverse laws on constructed-invertible
mappings (Theorem 5.1 and Proposition 3.9 as laws)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.framework import is_inverse
from repro.core.inverse import has_constant_propagation, inverse
from repro.core.quasi_inverse import quasi_inverse
from repro.dataexchange.recovery import analyze_round_trip
from repro.workloads import (
    instance_universe,
    random_ground_instance,
    random_invertible_mapping,
)

invertible_mappings = st.builds(
    random_invertible_mapping,
    st.integers(min_value=0, max_value=5_000),
    n_source=st.integers(min_value=1, max_value=2),
    max_arity=st.just(2),
    n_extra_tgds=st.integers(min_value=0, max_value=2),
)

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(mapping=invertible_mappings)
def test_constructed_mappings_propagate_constants(mapping):
    """Proposition 5.3's necessary condition holds by construction."""
    assert has_constant_propagation(mapping)


@SLOW
@given(mapping=invertible_mappings)
def test_inverse_algorithm_output_is_an_inverse(mapping):
    """Theorem 5.1 as a law: the algorithm's output passes the exact
    bounded inverse check on a small universe."""
    computed = inverse(mapping)
    universe = instance_universe(mapping.source, ["a"], max_facts=1)
    assert is_inverse(mapping, computed, universe, max_nulls=8).holds


@SLOW
@given(mapping=invertible_mappings)
def test_quasi_inverse_output_is_an_inverse_too(mapping):
    """Proposition 3.9 as a law: on an invertible mapping the
    QuasiInverse output is itself an inverse."""
    computed = quasi_inverse(mapping)
    universe = instance_universe(mapping.source, ["a"], max_facts=1)
    assert is_inverse(mapping, computed, universe, max_nulls=8).holds


@SLOW
@given(
    mapping=invertible_mappings,
    seed=st.integers(min_value=0, max_value=1000),
)
def test_inverse_output_is_faithful(mapping, seed):
    """An inverse recovers (an equivalent of) any exported source."""
    computed = inverse(mapping)
    source = random_ground_instance(
        mapping.source, seed=seed, n_facts=3, domain_size=2
    )
    report = analyze_round_trip(mapping, computed, source)
    assert report.sound
    assert report.faithful
