"""Property-based tests (hypothesis) for the core laws of the paper.

Mappings and instances are drawn through the library's seeded
generators (hypothesis supplies the seeds and sizes), which keeps the
search space well-formed while still exploring a wide range of shapes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.homomorphism import (
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from repro.core.composition import CompositionBudgetError, composition_membership
from repro.core.mapping import (
    data_exchange_equivalent,
    is_solution,
    solutions_contained,
    universal_solution,
)
from repro.core.quasi_inverse import lav_quasi_inverse, quasi_inverse
from repro.datamodel.instances import Instance
from repro.datamodel.terms import Constant
from repro.dataexchange.recovery import analyze_round_trip
from repro.dependencies.parser import parse_dependency
from repro.dependencies.rendering import render_dependency
from repro.workloads import random_ground_instance, random_lav_mapping

lav_mappings = st.builds(
    random_lav_mapping,
    st.integers(min_value=0, max_value=10_000),
    n_source=st.integers(min_value=1, max_value=2),
    n_target=st.integers(min_value=1, max_value=2),
    max_arity=st.just(2),
    n_tgds=st.integers(min_value=1, max_value=3),
)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_chase_output_is_a_solution(mapping, seed):
    source = random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
    solution = universal_solution(mapping, source)
    assert is_solution(mapping, source, solution)


@SLOW
@given(
    mapping=lav_mappings,
    seed=st.integers(min_value=0, max_value=1000),
    value=st.sampled_from(["c1", "c2", "extra"]),
)
def test_chase_output_is_universal(mapping, seed, value):
    """Any homomorphic image of the chase extended with junk is a
    solution, and the chase maps homomorphically into it."""
    source = random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
    solution = universal_solution(mapping, source)
    grounded = solution.substitute(
        {null: Constant(value) for null in solution.nulls()}
    )
    assert is_solution(mapping, source, grounded)
    assert instance_homomorphism(solution, grounded) is not None


@SLOW
@given(
    mapping=lav_mappings,
    seed_small=st.integers(min_value=0, max_value=500),
    seed_extra=st.integers(min_value=501, max_value=1000),
)
def test_source_containment_reverses_solution_spaces(mapping, seed_small, seed_extra):
    small = random_ground_instance(mapping.source, seed=seed_small, n_facts=2, domain_size=2)
    extra = random_ground_instance(mapping.source, seed=seed_extra, n_facts=2, domain_size=2)
    big = small.union(extra)
    assert solutions_contained(mapping, big, small)


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_solution_equivalence_is_an_equivalence(mapping, seed):
    left = random_ground_instance(mapping.source, seed=seed, n_facts=2, domain_size=2)
    right = random_ground_instance(
        mapping.source, seed=seed + 1, n_facts=2, domain_size=2
    )
    assert data_exchange_equivalent(mapping, left, left)
    assert data_exchange_equivalent(mapping, left, right) == data_exchange_equivalent(
        mapping, right, left
    )


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_equivalent_sources_have_equivalent_chases(mapping, seed):
    left = random_ground_instance(mapping.source, seed=seed, n_facts=2, domain_size=2)
    right = random_ground_instance(
        mapping.source, seed=seed + 7, n_facts=2, domain_size=2
    )
    chases_equivalent = is_homomorphically_equivalent(
        universal_solution(mapping, left), universal_solution(mapping, right)
    )
    assert chases_equivalent == data_exchange_equivalent(mapping, left, right)


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_quasi_inverse_of_lav_mapping_is_faithful(mapping, seed):
    """Proposition 3.11 + Theorem 6.8, as a law over random LAV mappings."""
    reverse = quasi_inverse(mapping)
    source = random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
    report = analyze_round_trip(mapping, reverse, source)
    assert report.sound
    assert report.faithful


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_lav_construction_is_sound_and_faithful(mapping, seed):
    """The Theorem 4.7 disjunction-free construction, as a law."""
    reverse = lav_quasi_inverse(mapping)
    source = random_ground_instance(mapping.source, seed=seed, n_facts=3, domain_size=2)
    report = analyze_round_trip(mapping, reverse, source)
    assert report.sound
    assert report.faithful


@SLOW
@given(
    mapping=lav_mappings,
    seed=st.integers(min_value=0, max_value=500),
    seed_extra=st.integers(min_value=501, max_value=1000),
)
def test_composition_membership_monotone_in_right_argument(
    mapping, seed, seed_extra
):
    """Conclusions are positive, so growing I2 never breaks membership."""
    reverse = quasi_inverse(mapping)
    source = random_ground_instance(mapping.source, seed=seed, n_facts=2, domain_size=2)
    extra = random_ground_instance(
        mapping.source, seed=seed_extra, n_facts=2, domain_size=2
    )
    try:
        member = composition_membership(mapping, reverse, source, source, max_nulls=8)
    except CompositionBudgetError:
        return  # random mapping blew the null budget; the law is vacuous
    if member:
        assert composition_membership(
            mapping, reverse, source, source.union(extra), max_nulls=8
        )


@SLOW
@given(mapping=lav_mappings)
def test_rendering_round_trips_through_the_parser(mapping):
    for dependency in mapping.dependencies:
        for unicode in (True, False):
            rendered = render_dependency(dependency, unicode=unicode)
            assert parse_dependency(rendered) == dependency


@SLOW
@given(mapping=lav_mappings)
def test_quasi_inverse_rendering_round_trips(mapping):
    """The algorithm's richer outputs also survive render -> parse."""
    reverse = quasi_inverse(mapping)
    for dependency in reverse.dependencies:
        rendered = render_dependency(dependency, unicode=False)
        assert parse_dependency(rendered) == dependency
