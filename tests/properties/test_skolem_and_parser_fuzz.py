"""Property-based tests: skolemized evaluation laws and parser fuzzing."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase.homomorphism import is_homomorphically_equivalent
from repro.core.mapping import universal_solution
from repro.core.skolem import skolem_exchange, skolemize
from repro.dependencies.parser import ParseError, parse_dependency
from repro.workloads import random_ground_instance, random_lav_mapping

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

lav_mappings = st.builds(
    random_lav_mapping,
    st.integers(min_value=0, max_value=10_000),
    n_source=st.integers(min_value=1, max_value=2),
    n_target=st.integers(min_value=1, max_value=2),
    max_arity=st.just(2),
    n_tgds=st.integers(min_value=1, max_value=3),
)


@SLOW
@given(mapping=lav_mappings, seed=st.integers(min_value=0, max_value=1000))
def test_skolem_exchange_is_a_universal_solution(mapping, seed):
    """Semi-oblivious (skolemized) evaluation ≈ the restricted chase."""
    source = random_ground_instance(
        mapping.source, seed=seed, n_facts=3, domain_size=2
    )
    direct = universal_solution(mapping, source)
    via_skolem = skolem_exchange(skolemize(mapping), source)
    assert is_homomorphically_equivalent(direct, via_skolem)


@SLOW
@given(mapping=lav_mappings)
def test_skolemize_preserves_rule_count(mapping):
    assert len(skolemize(mapping).rules) == len(mapping.dependencies)


# --- parser fuzzing ---------------------------------------------------------

_dependency_alphabet = st.text(
    alphabet="PQRSxyz()->&|!=, Constantexists.∃∧∨→≠0123456789'",
    min_size=0,
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(text=_dependency_alphabet)
def test_parser_never_crashes(text):
    """Arbitrary text either parses or raises ParseError — never an
    unexpected exception type."""
    try:
        parse_dependency(text)
    except ParseError:
        pass


@settings(max_examples=100, deadline=None)
@given(text=st.text(min_size=0, max_size=40))
def test_parser_handles_arbitrary_unicode(text):
    try:
        parse_dependency(text)
    except ParseError:
        pass
