"""Property-based tests: orbit-reduced sweeps agree with full sweeps.

The soundness claim of ``symmetry="orbits"`` is that for
permutation-invariant mappings over permutation-closed universes, a
sweep of orbit representatives reaches exactly the same verdict as the
full sweep, with witnesses that are the same up to a simultaneous
constant renaming.  Hypothesis drives both modes over random LAV
mappings and checks verdicts and witness orbits coincide.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.framework import (
    SolutionEquivalence,
    is_quasi_inverse,
    subset_property,
)
from repro.core.quasi_inverse import quasi_inverse
from repro.errors import CompositionBudgetError
from repro.engine.cache import reset_all_caches
from repro.engine.symmetry import ground_pair_key, mapping_permutation_invariant
from repro.workloads import random_lav_mapping
from repro.workloads.universes import instance_universe

lav_mappings = st.builds(
    random_lav_mapping,
    st.integers(min_value=0, max_value=10_000),
    n_source=st.just(1),
    n_target=st.integers(min_value=1, max_value=2),
    max_arity=st.just(2),
    n_tgds=st.integers(min_value=1, max_value=2),
)

# The quasi-inverse check chases both M and QuasiInverse(M) over every
# universe pair, and its cost varies by orders of magnitude with the
# drawn shape — so this test sticks to single-tgd mappings and a seed
# window whose members are all individually cheap.
small_lav_mappings = st.builds(
    random_lav_mapping,
    st.integers(min_value=0, max_value=31),
    n_source=st.just(1),
    n_target=st.just(1),
    max_arity=st.just(2),
    n_tgds=st.just(1),
)

# Sweep cost varies by orders of magnitude across drawn mappings, so
# unlike the rest of the property suite these tests are derandomized:
# an unlucky draw would otherwise trip CI's per-test timeout.
SLOW = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _universe(mapping):
    return instance_universe(mapping.source, ["c1", "c2"], max_facts=2)


def _pair_orbits(violations):
    """Violation pairs up to simultaneous constant renaming."""
    return {ground_pair_key(left, right) for left, right in violations}


@SLOW
@given(mapping=lav_mappings)
def test_subset_property_verdicts_agree(mapping):
    assert mapping_permutation_invariant(mapping)
    universe = _universe(mapping)
    equivalence = SolutionEquivalence(mapping)

    def sweep(symmetry):
        reset_all_caches()
        return subset_property(
            mapping,
            equivalence,
            equivalence,
            universe,
            stop_at_first_violation=False,
            workers=0,
            symmetry=symmetry,
        )

    full = sweep("full")
    orbits = sweep("orbits")
    assert full.holds == orbits.holds
    assert full.coverage == orbits.coverage == "exhaustive"
    # Both modes account for the whole universe; only the orbit sweep
    # reports representatives.
    assert full.instances_checked == orbits.instances_checked == len(universe)
    assert full.orbits_checked == 0
    assert 0 < orbits.orbits_checked <= len(universe)
    # Witnesses coincide up to a simultaneous renaming of constants:
    # every violation the full sweep finds lies in the orbit of one the
    # reduced sweep reports, and vice versa.
    assert _pair_orbits(full.violations) == _pair_orbits(orbits.violations)


@SLOW
@given(mapping=small_lav_mappings)
def test_quasi_inverse_verdicts_agree(mapping):
    universe = _universe(mapping)
    candidate = quasi_inverse(mapping)

    def check(symmetry):
        reset_all_caches()
        return is_quasi_inverse(
            mapping,
            candidate,
            universe,
            max_nulls=5,  # small witness pool: cost, not soundness
            stop_at_first_mismatch=False,
            workers=0,
            symmetry=symmetry,
        )

    try:
        full = check("full")
        orbits = check("orbits")
    except CompositionBudgetError:
        # The trimmed null budget starved this draw's chase; the
        # mode-equivalence property is vacuous for it.
        assume(False)
    assert full.holds == orbits.holds
    assert full.coverage == orbits.coverage == "exhaustive"
    assert full.instances_checked == orbits.instances_checked == len(universe)
    mismatch_orbits_full = {
        (ground_pair_key(left, right), direction)
        for left, right, direction in full.mismatches
    }
    mismatch_orbits_reduced = {
        (ground_pair_key(left, right), direction)
        for left, right, direction in orbits.mismatches
    }
    assert mismatch_orbits_full == mismatch_orbits_reduced
