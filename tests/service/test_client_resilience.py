"""The self-healing client transport, without a daemon.

Everything here runs against a port that is guaranteed closed (or a
monkeypatched transport), so the retry loop, the circuit breaker, the
backoff schedule, and the poll floor are tested in isolation; the
chaos suite exercises the same machinery against a live daemon.
"""

import socket
import time

import pytest

import repro.service.client as client_module
from repro.engine import engine_stats, fault_scope, reset_engine_stats
from repro.errors import ServiceError, ServiceUnavailable
from repro.service.client import POLL_FLOOR_SECONDS, ServiceClient


@pytest.fixture(autouse=True)
def _clean_stats():
    reset_engine_stats()
    yield
    reset_engine_stats()


@pytest.fixture
def dead_endpoint():
    """A URL nothing listens on (bind, learn the port, close)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


def _fast_client(dead_endpoint, **overrides):
    options = dict(
        timeout=0.5,
        retries=2,
        backoff=0.001,
        backoff_max=0.002,
        breaker_threshold=0,  # disabled unless a test opts in
        jitter_seed=7,
    )
    options.update(overrides)
    return ServiceClient(dead_endpoint, **options)


class TestRetries:
    def test_every_attempt_fails_then_raises(self, dead_endpoint):
        client = _fast_client(dead_endpoint, retries=2)
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        assert engine_stats().counter("client_retries") == 2
        assert engine_stats().counter("client_request_failures") == 3

    def test_retries_zero_is_single_shot(self, dead_endpoint):
        client = _fast_client(dead_endpoint, retries=0)
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        assert engine_stats().counter("client_retries") == 0
        assert engine_stats().counter("client_request_failures") == 1

    def test_injected_drop_consumes_one_retry(self, dead_endpoint, monkeypatch):
        calls = []

        def fake_once(method, path, payload, timeout):
            if client_module.faults.fire("client.drop") is not None:
                raise ServiceUnavailable("injected connection drop")
            calls.append(path)
            return 200, {"ok": True}

        client = _fast_client(dead_endpoint, retries=1)
        monkeypatch.setattr(client, "_request_once", fake_once)
        with fault_scope("client.drop:at=1"):
            status, body = client.request("GET", "/healthz")
        assert status == 200 and calls == ["/healthz"]
        assert engine_stats().counter("fault_client_drop") == 1
        assert engine_stats().counter("client_retries") == 1

    def test_backoff_schedule_is_deterministic_with_seed(
        self, dead_endpoint, monkeypatch
    ):
        schedules = []
        for _ in range(2):
            sleeps = []
            monkeypatch.setattr(
                client_module.time, "sleep", lambda s: sleeps.append(s)
            )
            client = ServiceClient(
                dead_endpoint,
                timeout=0.5,
                retries=3,
                backoff=0.1,
                backoff_max=0.25,
                breaker_threshold=0,
                jitter_seed=42,
            )
            with pytest.raises(ServiceUnavailable):
                client.request("GET", "/healthz")
            monkeypatch.undo()
            schedules.append(sleeps)
        first, second = schedules
        assert first == second  # same seed, same jitter
        assert len(first) == 3
        # Equal jitter keeps each delay within [base/2, base], and the
        # exponential base is capped by backoff_max.
        for delay, base in zip(first, (0.1, 0.2, 0.25)):
            assert base / 2 <= delay <= base


class TestCircuitBreaker:
    def test_opens_after_threshold_and_rejects_fast(self, dead_endpoint):
        client = _fast_client(
            dead_endpoint, retries=0, breaker_threshold=2, breaker_cooldown=60.0
        )
        for _ in range(2):
            with pytest.raises(ServiceUnavailable):
                client.request("GET", "/healthz")
        assert engine_stats().counter("client_breaker_trips") == 1
        started = time.monotonic()
        with pytest.raises(ServiceUnavailable, match="circuit breaker open"):
            client.request("GET", "/healthz")
        assert time.monotonic() - started < 0.1  # no network attempt
        assert engine_stats().counter("client_breaker_rejections") == 1
        assert engine_stats().counter("client_request_failures") == 2

    def test_half_open_probe_after_cooldown_can_retrip(self, dead_endpoint):
        client = _fast_client(
            dead_endpoint, retries=0, breaker_threshold=2, breaker_cooldown=0.05
        )
        for _ in range(2):
            with pytest.raises(ServiceUnavailable):
                client.request("GET", "/healthz")
        time.sleep(0.06)
        # Cooldown expired: exactly one probe goes to the network,
        # fails, and re-opens the breaker immediately.
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        assert engine_stats().counter("client_request_failures") == 3
        assert engine_stats().counter("client_breaker_trips") == 2
        with pytest.raises(ServiceUnavailable, match="circuit breaker open"):
            client.request("GET", "/healthz")

    def test_success_resets_the_failure_streak(self, dead_endpoint, monkeypatch):
        client = _fast_client(
            dead_endpoint, retries=0, breaker_threshold=2, breaker_cooldown=60.0
        )
        with pytest.raises(ServiceUnavailable):
            client.request("GET", "/healthz")
        monkeypatch.setattr(
            client, "_request_once", lambda *a: (200, {"ok": True})
        )
        assert client.request("GET", "/healthz") == (200, {"ok": True})
        monkeypatch.undo()
        # The earlier failure no longer counts toward the threshold.
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.request("GET", "/healthz")
        assert "circuit breaker" not in str(excinfo.value)
        assert engine_stats().counter("client_breaker_trips") == 0


class TestResultPolling:
    def _poll_transcript(self, monkeypatch, responses, **result_kwargs):
        """Run ``result()`` against canned 202/200 responses, recording
        every sleep; returns (status, body, sleeps)."""
        client = ServiceClient("http://example.invalid", retries=0)
        replies = list(responses)
        monkeypatch.setattr(
            client, "request", lambda *a, **k: replies.pop(0)
        )
        sleeps = []
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: sleeps.append(s)
        )
        status, body = client.result("j1", **result_kwargs)
        monkeypatch.undo()
        return status, body, sleeps

    def test_poll_never_sleeps_below_the_floor(self, monkeypatch):
        status, _, sleeps = self._poll_transcript(
            monkeypatch,
            [(202, {"state": "running"})] * 3 + [(200, {"state": "done"})],
            wait=30.0,
            poll=0.001,  # pathological caller value
        )
        assert status == 200
        assert sleeps and all(s >= POLL_FLOOR_SECONDS for s in sleeps)

    def test_poll_honours_server_retry_after_hint(self, monkeypatch):
        _, _, sleeps = self._poll_transcript(
            monkeypatch,
            [
                (202, {"state": "running", "retry_after": 1.25}),
                (200, {"state": "done"}),
            ],
            wait=30.0,
            poll=0.5,
        )
        assert sleeps == [1.25]

    def test_zero_wait_returns_202_immediately(self, monkeypatch):
        status, body, sleeps = self._poll_transcript(
            monkeypatch, [(202, {"state": "running"})], wait=0.0
        )
        assert status == 202 and body["state"] == "running"
        assert sleeps == []


class TestEnvKnobs:
    @pytest.mark.parametrize(
        "name",
        [
            "REPRO_CLIENT_RETRIES",
            "REPRO_CLIENT_BREAKER_THRESHOLD",
        ],
    )
    @pytest.mark.parametrize("value", ["three", "-1", "1.5"])
    def test_invalid_int_knobs_raise(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ServiceError, match=name):
            ServiceClient("http://example.invalid")

    @pytest.mark.parametrize(
        "name",
        [
            "REPRO_CLIENT_BACKOFF",
            "REPRO_CLIENT_BACKOFF_MAX",
            "REPRO_CLIENT_BREAKER_COOLDOWN",
        ],
    )
    @pytest.mark.parametrize("value", ["soon", "-0.5"])
    def test_invalid_float_knobs_raise(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        with pytest.raises(ServiceError, match=name):
            ServiceClient("http://example.invalid")

    def test_env_defaults_apply_and_kwargs_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "7")
        monkeypatch.setenv("REPRO_CLIENT_BACKOFF", "0.25")
        client = ServiceClient("http://example.invalid")
        assert client.retries == 7 and client.backoff == 0.25
        explicit = ServiceClient("http://example.invalid", retries=1)
        assert explicit.retries == 1  # kwarg beats env

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENT_RETRIES", "")
        assert ServiceClient("http://example.invalid").retries == 3
