"""Job execution: every terminal outcome, and the shared rendering."""

import pytest

from repro.engine import fork_available, reset_all_caches
from repro.engine.budget import Budget, coverage_events, reset_coverage_events
from repro.service.jobs import budget_for, execute_job
from repro.service.protocol import normalize_job

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _clean_registries():
    reset_coverage_events()
    yield
    reset_coverage_events()


def _spec(**payload):
    return normalize_job(payload)


class TestBudgetFor:
    def test_no_limits_no_budget(self):
        assert budget_for(_spec(kind="unique", mapping="Projection")) is None

    def test_spec_limits_win_over_default(self):
        budget = budget_for(
            _spec(kind="unique", mapping="Projection", deadline=1.5),
            default_deadline=60.0,
        )
        assert budget is not None and budget.deadline == 1.5

    def test_daemon_default_applies_when_spec_is_silent(self):
        budget = budget_for(
            _spec(kind="unique", mapping="Projection"), default_deadline=60.0
        )
        assert budget is not None and budget.deadline == 60.0


class TestTerminalOutcomes:
    def test_done(self):
        outcome = execute_job(_spec(kind="invertibility", mapping="Example5.4"))
        assert outcome.state == "done"
        assert outcome.exit_code == 0
        assert outcome.coverage == "exhaustive"
        assert "== check Example5.4: invertibility" in outcome.rendering
        assert "verdict: all bounded checks pass" in outcome.rendering

    def test_violated(self):
        outcome = execute_job(_spec(kind="unique", mapping="Projection"))
        assert outcome.state == "violated"
        assert outcome.exit_code == 1
        assert "VIOLATED" in outcome.rendering

    def test_violation_beats_degraded_coverage(self):
        """A violation found under a tripped budget is still a
        violation — exactly the CLI's exit-code semantics."""
        budget = Budget(max_instances=3)
        outcome = execute_job(
            _spec(kind="unique", mapping="Projection"), budget=budget
        )
        assert outcome.state in ("violated", "partial")
        if outcome.state == "violated":
            assert outcome.exit_code == 1

    def test_partial_on_budget_trip(self):
        reset_all_caches()
        outcome = execute_job(
            _spec(kind="subset", mapping="Decomposition", max_facts=2),
            budget=Budget(max_instances=4),
        )
        assert outcome.state == "partial"
        assert outcome.exit_code == 3
        assert outcome.coverage == "budget"
        assert outcome.coverage_events

    def test_faulted_rendering_on_engine_error(self, monkeypatch):
        from repro import errors

        def boom(*args, **kwargs):
            raise errors.ChaseError("synthetic chase failure")

        import repro.service.jobs as jobs_module

        monkeypatch.setitem(
            jobs_module._EXECUTORS, "unique", lambda spec, ckpt: boom()
        )
        outcome = execute_job(_spec(kind="unique", mapping="Projection"))
        assert outcome.state == "faulted"
        assert outcome.exit_code == 4
        assert outcome.rendering.startswith("error: ChaseError")

    @needs_fork
    def test_faulted_on_unrecovered_worker_death(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_KILL_TASK", "0")
        monkeypatch.setenv("REPRO_ON_FAULT", "raise")
        reset_all_caches()
        outcome = execute_job(
            _spec(kind="subset", mapping="Decomposition", max_facts=2, workers=2)
        )
        assert outcome.state == "faulted"
        assert outcome.exit_code == 4
        assert outcome.coverage == "faulted"

    def test_unknown_kind_raises(self):
        from repro.errors import ServiceProtocolError

        with pytest.raises(ServiceProtocolError):
            execute_job({"kind": "nonsense"})


class TestCoverageIsolation:
    def test_scope_keeps_events_out_of_the_ambient_registry(self):
        reset_coverage_events()
        outcome = execute_job(
            _spec(kind="subset", mapping="Decomposition", max_facts=2),
            budget=Budget(max_instances=4),
        )
        assert outcome.coverage_events
        assert coverage_events() == ()  # nothing leaked into this thread

    def test_concurrent_jobs_do_not_share_events(self):
        import threading

        outcomes = {}

        def run(name, budget):
            outcomes[name] = execute_job(
                _spec(kind="subset", mapping="Decomposition", max_facts=2),
                budget=budget,
            )

        reset_all_caches()
        tripped = threading.Thread(
            target=run, args=("tripped", Budget(max_instances=4))
        )
        clean = threading.Thread(target=run, args=("clean", None))
        tripped.start()
        clean.start()
        tripped.join()
        clean.join()
        assert outcomes["tripped"].state == "partial"
        assert outcomes["clean"].state == "done"
        assert outcomes["clean"].coverage == "exhaustive"
        assert not outcomes["clean"].coverage_events


class TestRoundtripJobs:
    def test_roundtrip_done_with_inline_mappings(self):
        copy = {
            "source": {"P": 2},
            "target": {"Q": 2},
            "dependencies": "P(x,y) -> Q(x,y)",
            "name": "copy",
        }
        back = {
            "source": {"Q": 2},
            "target": {"P": 2},
            "dependencies": "Q(x,y) -> P(x,y)",
            "name": "copy-back",
        }
        outcome = execute_job(
            _spec(kind="roundtrip", mapping=copy, reverse=back, max_facts=1)
        )
        assert outcome.state == "done"
        assert "sound: yes" in outcome.rendering
        assert "faithful: yes" in outcome.rendering
