"""Wire-format normalization: canonical specs, content keys, state maps."""

import pytest

from repro.errors import ServiceProtocolError
from repro.service.protocol import (
    JOB_STATES,
    STATE_EXIT_CODES,
    STATE_HTTP_STATUS,
    TERMINAL_STATES,
    exit_code_for,
    job_key,
    normalize_job,
    resolve_mapping,
)


class TestNormalizeJob:
    def test_defaults_fill_in(self):
        spec = normalize_job({"kind": "subset", "mapping": "Projection"})
        assert spec == {
            "kind": "subset",
            "mapping": "Projection",
            "domain": ["a", "b"],
            "max_facts": 1,
        }

    def test_domain_is_sorted_and_deduplicated(self):
        spec = normalize_job(
            {"kind": "unique", "mapping": "Projection", "domain": ["b", "a", "b"]}
        )
        assert spec["domain"] == ["a", "b"]

    def test_domain_accepts_comma_string(self):
        spec = normalize_job(
            {"kind": "unique", "mapping": "Projection", "domain": "c,a"}
        )
        assert spec["domain"] == ["a", "c"]

    def test_experiment_spec_carries_only_the_id(self):
        spec = normalize_job({"kind": "experiment", "experiment": "E1"})
        assert spec == {"kind": "experiment", "experiment": "E1"}

    def test_roundtrip_needs_reverse(self):
        with pytest.raises(ServiceProtocolError):
            normalize_job({"kind": "roundtrip", "mapping": "Decomposition"})

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "nonsense"},
            {"kind": "subset"},  # no mapping
            {"kind": "subset", "mapping": "NoSuchMapping"},
            {"kind": "experiment", "experiment": "E999"},
            {"kind": "subset", "mapping": "Projection", "domain": []},
            {"kind": "subset", "mapping": "Projection", "max_facts": -1},
            {"kind": "subset", "mapping": "Projection", "max_facts": True},
            {"kind": "subset", "mapping": "Projection", "workers": "two"},
            {"kind": "subset", "mapping": "Projection", "symmetry": "diag"},
            {"kind": "subset", "mapping": "Projection", "backend": "gpu"},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ServiceProtocolError):
            normalize_job(payload)

    def test_option_typing_floats_accept_ints(self):
        spec = normalize_job(
            {"kind": "subset", "mapping": "Projection", "deadline": 5}
        )
        assert spec["deadline"] == 5.0
        assert isinstance(spec["deadline"], float)

    def test_inline_mapping_canonicalized(self):
        spec = normalize_job(
            {
                "kind": "subset",
                "mapping": {
                    "source": {"P": 2},
                    "target": {"Q": 2},
                    "dependencies": "P(x,y) -> Q(x,y)",
                    "name": "copy",
                },
            }
        )
        assert spec["mapping"]["source"] == {"P": 2}
        assert resolve_mapping(spec["mapping"]).name == "copy"

    def test_inline_mapping_parse_errors_rejected_at_submit(self):
        with pytest.raises(ServiceProtocolError):
            normalize_job(
                {
                    "kind": "subset",
                    "mapping": {
                        "source": {"P": 2},
                        "target": {"Q": 2},
                        "dependencies": "this is not a dependency",
                    },
                }
            )


class TestJobKey:
    def test_equal_questions_equal_keys(self):
        left = normalize_job(
            {"kind": "subset", "mapping": "Projection", "domain": ["b", "a"]}
        )
        right = normalize_job(
            {"kind": "subset", "mapping": "Projection", "domain": "a,b"}
        )
        assert job_key(left) == job_key(right)

    def test_different_questions_differ(self):
        base = {"kind": "subset", "mapping": "Projection"}
        assert job_key(normalize_job(base)) != job_key(
            normalize_job({**base, "max_facts": 2})
        )
        assert job_key(normalize_job(base)) != job_key(
            normalize_job({**base, "kind": "unique"})
        )

    def test_options_are_part_of_the_key(self):
        base = {"kind": "subset", "mapping": "Projection"}
        assert job_key(normalize_job(base)) != job_key(
            normalize_job({**base, "symmetry": "orbits"})
        )


class TestStateMaps:
    def test_every_terminal_state_has_exit_code_and_http_status(self):
        for state in TERMINAL_STATES:
            assert exit_code_for(state) == STATE_EXIT_CODES[state]
            assert state in STATE_HTTP_STATUS

    def test_exit_codes_mirror_the_cli(self):
        assert STATE_EXIT_CODES["done"] == 0
        assert STATE_EXIT_CODES["violated"] == 1
        assert STATE_EXIT_CODES["partial"] == 3
        assert STATE_EXIT_CODES["faulted"] == 4

    def test_non_terminal_states_have_no_exit_code(self):
        for state in JOB_STATES:
            if state in TERMINAL_STATES:
                continue
            assert STATE_HTTP_STATUS[state] == 202
            with pytest.raises(ServiceProtocolError):
                exit_code_for(state)
