"""The job state machine, transition by transition.

Heavy sweeps are faked here — a controllable ``execute_job`` stand-in
lets each test drive exactly one transition (budget trips, worker
deaths, drains) without fork pools; the subprocess smoke tests exercise
the real engine end to end.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.engine.budget import Budget
from repro.engine.instrumentation import engine_stats
from repro.errors import DeadlineExceeded, JobNotFound, ServiceProtocolError
from repro.service.jobs import JobOutcome
from repro.service.queue import JobQueue, journal_progress


@pytest.fixture(autouse=True)
def _clean_stats():
    engine_stats().reset()
    yield
    engine_stats().reset()


def _outcome(state, rendering="fake report"):
    from repro.service.protocol import exit_code_for

    return JobOutcome(
        state=state, exit_code=exit_code_for(state), rendering=rendering
    )


def _fake_executor(monkeypatch, outcome=None, *, started=None, hold=None):
    """Replace the queue's ``execute_job`` with a fake that optionally
    signals `started`, then blocks on the budget until `hold` is set or
    the budget expires (returning ``partial``, like a real sweep)."""

    def fake(spec, *, budget=None, checkpoint=None):
        if started is not None:
            started.set()
        if hold is not None:
            while not hold.is_set():
                if budget is not None:
                    try:
                        budget.check()
                    except DeadlineExceeded:
                        if checkpoint is not None:
                            checkpoint.record(
                                "fake-sweep",
                                verified_upto=8,
                                total=37,
                                ok=True,
                                violations=0,
                                fingerprint="cafe",
                                flush=True,
                            )
                        return _outcome("partial")
                time.sleep(0.005)
        return outcome or _outcome("done")

    import repro.service.queue as queue_module

    monkeypatch.setattr(queue_module, "execute_job", fake)
    return fake


async def _until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


SPEC = {"kind": "unique", "mapping": "Projection"}


class TestTransitions:
    @pytest.mark.parametrize("state", ["done", "violated", "partial", "faulted"])
    def test_queued_running_terminal(self, tmp_path, monkeypatch, state):
        async def scenario():
            _fake_executor(monkeypatch, _outcome(state))
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            record, deduped = queue.submit(dict(SPEC))
            assert not deduped
            await queue.wait(record.job_id, timeout=5)
            assert record.state == state
            assert record.exit_code() == record.outcome.exit_code
            names = [event["event"] for event in record.events]
            assert names[:2] == ["submitted", "started"]
            assert names[-1] == "finished"
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        async def scenario():
            started = threading.Event()
            hold = threading.Event()
            _fake_executor(monkeypatch, started=started, hold=hold)
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            blocker, _ = queue.submit(dict(SPEC))
            victim, _ = queue.submit({**SPEC, "max_facts": 2})
            await _until(lambda: blocker.state == "running")
            assert victim.state == "queued"
            assert queue.cancel(victim.job_id)
            assert victim.state == "cancelled"
            assert victim.exit_code() == 5
            hold.set()
            await queue.wait(blocker.job_id, timeout=5)
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_cancel_running_job(self, tmp_path, monkeypatch):
        async def scenario():
            started = threading.Event()
            hold = threading.Event()
            _fake_executor(monkeypatch, started=started, hold=hold)
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await _until(started.is_set)
            assert record.state == "running"
            assert queue.cancel(record.job_id)  # expires the budget
            await queue.wait(record.job_id, timeout=5)
            assert record.state == "cancelled"
            assert not queue.cancel(record.job_id)  # already terminal
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_budget_trip_mid_job_is_partial(self, tmp_path, monkeypatch):
        async def scenario():
            started = threading.Event()
            hold = threading.Event()  # never set: only the budget stops it
            _fake_executor(monkeypatch, started=started, hold=hold)
            queue = JobQueue(str(tmp_path), max_jobs=1, job_deadline=0.2)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await queue.wait(record.job_id, timeout=5)
            assert record.state == "partial"
            assert record.exit_code() == 3
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_transient_crash_is_retried_to_success(self, tmp_path, monkeypatch):
        async def scenario():
            import repro.service.queue as queue_module

            calls = []

            def flaky(spec, *, budget=None, checkpoint=None):
                calls.append(spec)
                if len(calls) == 1:
                    raise RuntimeError("synthetic executor crash")
                return _outcome("done")

            monkeypatch.setattr(queue_module, "execute_job", flaky)
            queue = JobQueue(str(tmp_path), max_jobs=1, max_retries=2)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await queue.wait(record.job_id, timeout=5)
            assert record.state == "done"  # healed on the retry
            assert record.attempts == 1
            assert not record.quarantined
            assert "retried" in [e["event"] for e in record.events]
            assert queue.stats()["job_retries"] == 1
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_poison_job_is_quarantined_not_wedged(self, tmp_path, monkeypatch):
        async def scenario():
            import repro.service.queue as queue_module

            calls = []

            def poison(spec, *, budget=None, checkpoint=None):
                calls.append(spec)
                if spec.get("max_facts") != 2:
                    raise RuntimeError("synthetic executor crash")
                return _outcome("done")

            monkeypatch.setattr(queue_module, "execute_job", poison)
            queue = JobQueue(str(tmp_path), max_jobs=1, max_retries=1)
            await queue.start()
            first, _ = queue.submit(dict(SPEC))
            await queue.wait(first.job_id, timeout=5)
            assert first.state == "faulted"
            assert first.quarantined
            assert first.attempts == 2  # initial run + 1 retry
            assert "synthetic executor crash" in first.outcome.rendering
            assert "quarantined" in [e["event"] for e in first.events]
            assert queue.stats()["jobs_quarantined"] == 1
            second, _ = queue.submit({**SPEC, "max_facts": 2})
            await queue.wait(second.job_id, timeout=5)
            assert second.state == "done"  # the worker survived
            await queue.drain(timeout=1)

        asyncio.run(scenario())

    def test_unclean_restart_charges_an_attempt(self, tmp_path, monkeypatch):
        """A jobs.json without the ``clean`` marker means the daemon
        crashed; requeued jobs over their retry budget quarantine on
        load instead of crash-looping."""

        async def scenario():
            _fake_executor(monkeypatch, _outcome("done"))
            journal = tmp_path / "jobs.json"
            journal.write_text(
                json.dumps(
                    {
                        "jobs": [
                            {
                                "id": "j000001-deadbeef",
                                "key": "deadbeef",
                                "spec": dict(SPEC),
                                "state": "queued",
                                "attempts": 2,
                            }
                        ],
                        "clean": False,
                    }
                ),
                encoding="utf-8",
            )
            queue = JobQueue(str(tmp_path), max_jobs=1, max_retries=2)
            assert queue.load() == 0  # 2 prior attempts + this crash > budget
            [record] = queue.records()
            assert record.state == "faulted"
            assert record.quarantined
            assert record.attempts == 3

        asyncio.run(scenario())


class TestDeduplication:
    def test_in_flight_duplicates_join_the_same_record(self, tmp_path, monkeypatch):
        async def scenario():
            started = threading.Event()
            hold = threading.Event()
            _fake_executor(monkeypatch, started=started, hold=hold)
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            first, deduped_first = queue.submit(dict(SPEC))
            second, deduped_second = queue.submit(
                {**SPEC, "domain": ["b", "a"]}  # same canonical question
            )
            assert not deduped_first and deduped_second
            assert first is second
            assert first.dedup_count == 1
            assert queue.stats()["dedup_hits"] == 1
            assert queue.stats()["jobs_submitted"] == 1
            hold.set()
            await queue.wait(first.job_id, timeout=5)
            # Terminal records are no longer dedup targets.
            third, deduped_third = queue.submit(dict(SPEC))
            assert not deduped_third and third is not first
            hold.set()
            await queue.wait(third.job_id, timeout=5)
            await queue.drain(timeout=1)

        asyncio.run(scenario())


class TestDrainAndResume:
    def test_drain_requeues_running_jobs_with_checkpoint(self, tmp_path, monkeypatch):
        async def scenario():
            started = threading.Event()
            hold = threading.Event()  # never set: drain must interrupt
            _fake_executor(monkeypatch, started=started, hold=hold)
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await _until(started.is_set)
            await queue.drain(timeout=5)
            assert record.state == "queued"  # running -> queued, not partial
            assert [e["event"] for e in record.events][-1] == "drained"
            assert journal_progress(queue.checkpoint_path(record.key)) == 8
            persisted = json.loads(
                (tmp_path / "jobs.json").read_text(encoding="utf-8")
            )
            assert persisted["jobs"][0]["state"] == "queued"
            return record.key

        key = asyncio.run(scenario())

        async def restart():
            _fake_executor(monkeypatch, _outcome("done"))
            queue = JobQueue(str(tmp_path), max_jobs=1)
            assert queue.load() == 1
            await queue.start()
            [record] = queue.records()
            assert record.key == key
            await queue.wait(record.job_id, timeout=5)
            assert record.state == "done"
            assert record.resumed_prefix == 8  # picked up the journal
            events = [e["event"] for e in record.events]
            assert "requeued" in events and "resumed" in events
            await queue.drain(timeout=1)

        asyncio.run(restart())

    def test_terminal_jobs_survive_restart_with_outcome(self, tmp_path, monkeypatch):
        async def scenario():
            _fake_executor(monkeypatch, _outcome("violated", "bad mapping"))
            queue = JobQueue(str(tmp_path), max_jobs=1)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await queue.wait(record.job_id, timeout=5)
            await queue.drain(timeout=1)

        asyncio.run(scenario())

        async def restart():
            queue = JobQueue(str(tmp_path), max_jobs=1)
            assert queue.load() == 0  # terminal: nothing to re-queue
            [record] = queue.records()
            assert record.state == "violated"
            assert record.outcome.rendering == "bad mapping"
            assert record.exit_code() == 1

        asyncio.run(restart())


class TestQueries:
    def test_unknown_job_raises(self, tmp_path):
        async def scenario():
            queue = JobQueue(str(tmp_path))
            with pytest.raises(JobNotFound):
                queue.get("j999999-deadbeef")

        asyncio.run(scenario())

    def test_malformed_submit_raises_without_a_record(self, tmp_path):
        async def scenario():
            queue = JobQueue(str(tmp_path))
            with pytest.raises(ServiceProtocolError):
                queue.submit({"kind": "subset", "mapping": "NoSuchMapping"})
            assert queue.records() == []

        asyncio.run(scenario())

    def test_stats_shape(self, tmp_path, monkeypatch):
        async def scenario():
            _fake_executor(monkeypatch, _outcome("done"))
            queue = JobQueue(str(tmp_path), max_jobs=3, job_deadline=9.0)
            await queue.start()
            record, _ = queue.submit(dict(SPEC))
            await queue.wait(record.job_id, timeout=5)
            stats = queue.stats()
            assert stats["max_jobs"] == 3
            assert stats["job_deadline"] == 9.0
            assert stats["jobs"] == {"done": 1}
            assert stats["jobs_executed"] == 1
            assert "engine" in stats
            await queue.drain(timeout=1)

        asyncio.run(scenario())
