"""End-to-end smoke: a real daemon subprocess, driven over HTTP.

These are the tests CI's ``service-smoke`` job runs: exit-code/HTTP
parity for all four terminal verdicts, observable deduplication (two
identical submissions cost one chase), byte-identity against the CLI's
``check`` verb, and the SIGTERM -> checkpoint -> restart -> resume
cycle.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn_daemon(state_dir, *, env_extra=None, max_jobs=2):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    env.pop("REPRO_FAULT_KILL_TASK", None)
    env.pop("REPRO_FAULT_DELAY_TASK", None)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_ON_FAULT", None)
    env.update(env_extra or {})
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "serve",
            "--port",
            "0",
            "--state-dir",
            str(state_dir),
            "--max-jobs",
            str(max_jobs),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    endpoint_file = os.path.join(str(state_dir), "service.json")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died at startup:\n{process.stdout.read()}"
            )
        try:
            with open(endpoint_file, "r", encoding="utf-8") as handle:
                endpoint = json.load(handle)
            if endpoint.get("pid") == process.pid:
                break
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    else:
        process.kill()
        raise AssertionError("daemon did not write its endpoint file")
    client = ServiceClient(f"http://{endpoint['host']}:{endpoint['port']}")
    return process, client


def _stop(process, client=None):
    if process.poll() is None:
        try:
            if client is not None:
                client.shutdown()
        except Exception:
            pass
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=5)


@pytest.fixture()
def daemon(tmp_path):
    process, client = _spawn_daemon(tmp_path / "state")
    yield client
    _stop(process, client)


class TestParity:
    """HTTP statuses of /result mirror the CLI exit codes exactly."""

    def test_done_200_exit_0(self, daemon):
        job = daemon.submit({"kind": "invertibility", "mapping": "Example5.4"})
        status, body = daemon.result(job["id"], wait=60)
        assert (status, body["exit_code"]) == (200, 0)
        assert body["state"] == "done"
        assert "verdict: all bounded checks pass" in body["outcome"]["rendering"]

    def test_violated_422_exit_1(self, daemon):
        job = daemon.submit({"kind": "unique", "mapping": "Projection"})
        status, body = daemon.result(job["id"], wait=60)
        assert (status, body["exit_code"]) == (422, 1)
        assert body["state"] == "violated"

    def test_partial_206_exit_3(self, daemon):
        job = daemon.submit(
            {
                "kind": "subset",
                "mapping": "Decomposition",
                "max_facts": 2,
                "max_instances": 4,
            }
        )
        status, body = daemon.result(job["id"], wait=60)
        assert (status, body["exit_code"]) == (206, 3)
        assert body["state"] == "partial"
        assert body["outcome"]["coverage"] == "budget"

    def test_bad_payload_is_400(self, daemon):
        from repro.errors import ServiceProtocolError

        with pytest.raises(ServiceProtocolError):
            daemon.submit({"kind": "subset", "mapping": "NoSuchMapping"})


class TestFaultedParity:
    def test_faulted_424_exit_4(self, tmp_path):
        process, client = _spawn_daemon(
            tmp_path / "state",
            env_extra={
                "REPRO_FAULT_KILL_TASK": "0",
                "REPRO_ON_FAULT": "raise",
            },
        )
        try:
            job = client.submit(
                {
                    "kind": "subset",
                    "mapping": "Decomposition",
                    "max_facts": 2,
                    "workers": 2,
                }
            )
            status, body = client.result(job["id"], wait=120)
            assert (status, body["exit_code"]) == (424, 4)
            assert body["state"] == "faulted"
        finally:
            _stop(process, client)


class TestDeduplication:
    def test_identical_jobs_cost_one_chase(self, tmp_path):
        process, client = _spawn_daemon(
            tmp_path / "state",
            # Slow every pool task down so the duplicate submission
            # arrives while the first job is still in flight.
            env_extra={"REPRO_FAULT_DELAY_TASK": "*:0.2"},
        )
        try:
            payload = {
                "kind": "subset",
                "mapping": "Decomposition",
                "max_facts": 2,
                "workers": 2,
            }
            first = client.submit(payload)
            second = client.submit(dict(payload))
            assert not first["was_deduplicated"]
            assert second["was_deduplicated"]
            assert second["id"] == first["id"]
            status, body = client.result(first["id"], wait=120)
            assert status == 200
            stats = client.stats()
            assert stats["dedup_hits"] == 1
            assert stats["jobs_submitted"] == 1
            assert stats["jobs_executed"] == 1  # a single chase ran
            assert stats["engine"]["service_dedup_hits"] == 1
        finally:
            _stop(process, client)


class TestByteIdentity:
    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "invertibility", "mapping": "Example5.4"},
            {"kind": "unique", "mapping": "Projection"},
            {"kind": "subset", "mapping": "Decomposition", "max_facts": 2},
        ],
        ids=["invertibility", "unique", "subset"],
    )
    def test_service_rendering_equals_cli_check(self, daemon, payload):
        job = daemon.submit(payload)
        _status, body = daemon.result(job["id"], wait=120)
        rendering = body["outcome"]["rendering"]

        argv = [sys.executable, "-m", "repro.cli", "check", payload["kind"],
                payload["mapping"]]
        if "max_facts" in payload:
            argv += ["--max-facts", str(payload["max_facts"])]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
        env.pop("REPRO_FAULT_KILL_TASK", None)
        env.pop("REPRO_FAULT_DELAY_TASK", None)
        env.pop("REPRO_FAULTS", None)
        completed = subprocess.run(
            argv, capture_output=True, text=True, env=env, timeout=300
        )
        assert completed.stdout == rendering + "\n"
        assert completed.returncode == body["exit_code"]


class TestDrainResume:
    def test_sigterm_checkpoints_and_restart_resumes(self, tmp_path):
        state = tmp_path / "state"
        process, client = _spawn_daemon(
            state, env_extra={"REPRO_FAULT_DELAY_TASK": "*:0.3"}
        )
        job_id = None
        try:
            job = client.submit(
                {
                    "kind": "subset",
                    "mapping": "Decomposition",
                    "max_facts": 2,
                    "workers": 2,
                }
            )
            job_id = job["id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.job(job_id)["state"] == "running":
                    break
                time.sleep(0.05)
            time.sleep(2.5)  # let a contiguous prefix of pool tasks finish
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            _stop(process)

        journals = [
            name
            for name in os.listdir(state)
            if name.startswith("job-") and name.endswith(".ckpt.json")
        ]
        assert journals, "drain must flush a checkpoint journal"
        persisted = json.loads((state / "jobs.json").read_text(encoding="utf-8"))
        assert persisted["jobs"][0]["state"] == "queued"

        process, client = _spawn_daemon(
            state, env_extra={"REPRO_FAULT_DELAY_TASK": "*:0.05"}
        )
        try:
            status, body = client.result(job_id, wait=120)
            assert status == 200
            assert body["state"] == "done"
            assert body["resumed_prefix"] > 0  # the journal was honoured
            events = [event["event"] for event in body["events"]]
            assert "requeued" in events and "resumed" in events
        finally:
            _stop(process, client)
