"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "E1" in output and "E13" in output


def test_run_single_experiment(capsys):
    assert main(["run", "E11"]) == 0
    output = capsys.readouterr().out
    assert "Figure 1" in output
    assert "ALL CHECKS PASS" in output


def test_run_is_case_insensitive(capsys):
    assert main(["run", "e4"]) == 0


def test_run_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "E99"])


def test_run_json_output(capsys):
    import json

    assert main(["run", "E4", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["id"] == "E4"
    assert payload[0]["passed"] is True
    assert all(check["passed"] for check in payload[0]["checks"])


def test_export_sql(capsys):
    assert main(["export", "Decomposition", "--format", "sql"]) == 0
    output = capsys.readouterr().out
    assert "CREATE TABLE p" in output
    assert "INSERT INTO q" in output


def test_export_json(capsys):
    import json

    assert main(["export", "Example4.5", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["name"] == "Example4.5"
    assert len(payload["dependencies"]) == 4


def test_export_unknown_mapping(capsys):
    assert main(["export", "Nope"]) == 2


def test_export_sql_refuses_existential_mapping(capsys):
    # Example 4.5 has existential conclusions: no faithful SQL.
    assert main(["export", "Example4.5", "--format", "sql"]) == 2


def test_backend_flag_sets_environment_knob(capsys):
    import os

    previous = os.environ.pop("REPRO_BACKEND", None)
    try:
        assert main(["run", "E4", "--backend", "kernel"]) == 0
        assert os.environ.get("REPRO_BACKEND") == "kernel"
        assert "ALL CHECKS PASS" in capsys.readouterr().out
    finally:
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def test_backend_flag_rejects_unknown_value():
    with pytest.raises(SystemExit):
        main(["run", "E4", "--backend", "gpu"])


def test_check_done_exit_0(capsys):
    assert main(["check", "invertibility", "Example5.4"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("== check Example5.4: invertibility")
    assert "verdict: all bounded checks pass" in out


def test_check_violated_exit_1(capsys):
    assert main(["check", "unique", "Projection"]) == 1
    assert "VIOLATED" in capsys.readouterr().out


def test_check_partial_exit_3(capsys):
    code = main(
        ["check", "subset", "Decomposition", "--max-facts", "2",
         "--max-instances", "4"]
    )
    assert code == 3
    assert "coverage: budget" in capsys.readouterr().out


def test_check_unknown_mapping_exit_2(capsys):
    assert main(["check", "subset", "Nope"]) == 2
    assert "unknown catalog mapping" in capsys.readouterr().err


def test_check_unreachable_server_exit_2(capsys):
    code = main(
        ["check", "unique", "Projection", "--server", "http://127.0.0.1:1",
         "--wait", "1"]
    )
    assert code == 2
    assert "cannot reach service" in capsys.readouterr().err
