"""Coverage for the human-facing string surfaces."""

from repro.catalog import decomposition, figure_1_instance
from repro.core import inverse, quasi_inverse
from repro.core.skolem import SkolemTerm, compose_skolem, skolemize
from repro.core.generators import Generator
from repro.datamodel.instances import Instance
from repro.datamodel.schemas import Schema
from repro.datamodel.terms import Variable
from repro.dependencies.parser import parse_dependency


class TestStr:
    def test_schema(self):
        assert str(Schema.of({"P": 2, "Q": 1})) == "{P/2, Q/1}"

    def test_instance_sorted(self):
        rendered = str(Instance.build({"P": [("b",), ("a",)]}))
        assert rendered == "{P(a), P(b)}"

    def test_mapping_mentions_schemas_and_dependencies(self):
        rendered = str(decomposition())
        assert "Decomposition" in rendered
        assert "{P/3}" in rendered and "Q(x, y)" in rendered

    def test_generator_with_and_without_fresh_vars(self):
        x = Variable("x")
        closed = Generator(
            parse_dependency("P(x) -> Q(x)").premise.atoms, (x,)
        )
        assert str(closed) == "P(x)"
        open_generator = Generator(
            parse_dependency("P(x, z1) -> Q(x)").premise.atoms, (x,)
        )
        assert str(open_generator) == "∃z1 (P(x, z1))"

    def test_skolem_term_and_rule(self):
        term = SkolemTerm("f", (Variable("x"),))
        assert str(term) == "f(x)"
        skolemized = skolemize(decomposition())
        assert "→" in str(skolemized.rules[0])
        assert "Sk(Decomposition)" in str(skolemized)

    def test_instance_pretty_groups_by_relation(self):
        pretty = figure_1_instance().pretty()
        assert pretty.count("\n") == 0  # single relation: one line
        two_relations = Instance.build({"P": [("a",)], "Q": [("b",)]})
        assert two_relations.pretty().count("\n") == 1


class TestReportDataFlow:
    def test_quasi_inverse_names_are_derived(self):
        assert quasi_inverse(decomposition()).name == "QuasiInverse(Decomposition)"

    def test_inverse_names_are_derived(self):
        from repro.catalog import example_5_4

        assert inverse(example_5_4()).name == "Inverse(Example5.4)"

    def test_composed_names_join(self):
        from repro.core.mapping import SchemaMapping

        first = decomposition()
        second = SchemaMapping.from_text(
            first.target, Schema.of({"W": 2}), "Q(x, y) -> W(x, y)", name="Pick"
        )
        assert compose_skolem(first, second).name == "Decomposition∘Pick"
