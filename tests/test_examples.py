"""Smoke tests: every example script must run to completion.

Each example is executed in-process (fresh __main__ namespace) with
stdout captured; assertions inside the scripts double as checks.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(SCRIPTS) >= 5
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_reports_faithfulness(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "sound:    True" in output
    assert "faithful: True" in output


def test_employee_reorg_preserves_certain_answers(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "employee_reorg.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "CHANGED" not in output
    assert output.count("preserved") == 3


def test_union_integration_enumerates_worlds(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "union_integration.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "8 possible worlds" in output
    assert "faithful: True" in output


def test_sql_export_matches_chase(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "sql_export.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "!=" not in output
    assert output.count("==") == 3
