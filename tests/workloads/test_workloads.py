"""Unit tests for workload generators and universes."""

import pytest

from repro.datamodel.schemas import Schema
from repro.workloads import (
    instance_universe,
    power_instances,
    random_full_mapping,
    random_ground_instance,
    random_lav_mapping,
)
from repro.workloads.universes import UniverseTooLarge, all_possible_facts


class TestRandomMappings:
    def test_lav_generator_emits_lav(self):
        for seed in range(10):
            mapping = random_lav_mapping(seed)
            assert mapping.is_lav()
            assert mapping.source.is_disjoint_from(mapping.target)

    def test_full_generator_emits_full(self):
        for seed in range(10):
            mapping = random_full_mapping(seed)
            assert mapping.is_full() and mapping.is_tgd_mapping()

    def test_seed_determinism(self):
        assert random_lav_mapping(7) == random_lav_mapping(7)
        assert random_full_mapping(7) == random_full_mapping(7)

    def test_different_seeds_usually_differ(self):
        assert random_lav_mapping(1) != random_lav_mapping(2)

    def test_requested_tgd_count(self):
        mapping = random_lav_mapping(0, n_tgds=5)
        assert len(mapping.dependencies) == 5

    def test_every_source_relation_used_when_enough_tgds(self):
        mapping = random_lav_mapping(0, n_source=3, n_tgds=3)
        used = {dep.premise.atoms[0].relation for dep in mapping.dependencies}
        assert used == set(mapping.source.names())


class TestRandomInvertibleMappings:
    def test_copy_rules_present(self):
        from repro.workloads import random_invertible_mapping

        mapping = random_invertible_mapping(0, n_source=2)
        copy_targets = {
            f"{name}_copy" for name in mapping.source.names()
        }
        conclusions = {
            atom.relation
            for dep in mapping.dependencies
            for atom in dep.disjuncts[0]
        }
        assert copy_targets <= conclusions

    def test_constant_propagation_by_construction(self):
        from repro.core.inverse import has_constant_propagation
        from repro.workloads import random_invertible_mapping

        for seed in range(5):
            assert has_constant_propagation(random_invertible_mapping(seed))

    def test_seed_determinism(self):
        from repro.workloads import random_invertible_mapping

        assert random_invertible_mapping(3) == random_invertible_mapping(3)


class TestRandomInstances:
    def test_instances_are_ground_and_valid(self):
        mapping = random_lav_mapping(0)
        instance = random_ground_instance(mapping.source, seed=1)
        assert instance.is_ground()
        instance.validate(mapping.source)

    def test_seed_determinism(self):
        schema = Schema.of({"P": 2})
        left = random_ground_instance(schema, seed=3)
        right = random_ground_instance(schema, seed=3)
        assert left == right

    def test_fact_budget_respected(self):
        schema = Schema.of({"P": 2})
        instance = random_ground_instance(schema, seed=0, n_facts=3, domain_size=5)
        assert len(instance) <= 3


class TestUniverses:
    def test_all_possible_facts_counts(self):
        schema = Schema.of({"P": 1, "Q": 2})
        facts = all_possible_facts(schema, ["a", "b"])
        assert len(facts) == 2 + 4

    def test_universe_size(self):
        schema = Schema.of({"P": 1})
        universe = instance_universe(schema, ["a", "b"], max_facts=2)
        # subsets of 2 facts: empty, {a}, {b}, {a,b}
        assert len(universe) == 4

    def test_exclude_empty(self):
        schema = Schema.of({"P": 1})
        universe = instance_universe(
            schema, ["a"], max_facts=1, include_empty=False
        )
        assert all(instance for instance in universe)

    def test_cap_enforced(self):
        schema = Schema.of({"P": 2})
        with pytest.raises(UniverseTooLarge):
            list(power_instances(schema, ["a", "b", "c"], max_facts=5, cap=10))

    def test_deterministic_order(self):
        schema = Schema.of({"P": 1, "Q": 1})
        first = instance_universe(schema, ["a"], max_facts=2)
        second = instance_universe(schema, ["a"], max_facts=2)
        assert first == second

    def test_instances_are_ground(self):
        schema = Schema.of({"P": 1})
        for instance in instance_universe(schema, ["a", 1], max_facts=1):
            assert instance.is_ground()
